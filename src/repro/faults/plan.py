"""Deterministic, seedable fault-injection plans.

The paper's runs spanned up to 1000 Summit nodes, where a lost rank or a
walltime kill is routine; testing the recovery machinery on real
hardware failures is neither deterministic nor CI-friendly.  A
:class:`FaultPlan` is the substitute: an explicit list of
:class:`FaultSpec` events ("rank 1 crashes on arg-max call 0", "pool
chunk 2 hangs on call 1", "the recv into rank 0 is dropped once") that
the execution layers consult at well-defined injection points —
:class:`repro.core.pool.PoolEngine` chunks, the
:class:`repro.core.distributed.DistributedEngine` rank loop, the SPMD
rank program under :class:`repro.cluster.comm.SimComm`, and the
block-level :class:`repro.gpusim.executor.BlockKernelExecutor`.

Every spec fires a bounded number of times (``count``; ``-1`` =
persistent, e.g. a node that stays dead), so an injected failure either
recovers under retry or forces rescheduling — and the whole scenario
replays identically on every run.  ``FaultPlan.random(seed=...)``
derives a plan from a seed for randomized-but-reproducible campaigns.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["FAULT_KINDS", "FAULT_SITES", "FaultInjected", "FaultPlan", "FaultSpec"]

#: Supported failure modes.  ``join`` / ``leave`` are membership churn
#: events for the elastic scale-out, not failures per se: a ``join``
#: registers ``target`` new ranks mid-solve, a ``leave`` drains rank
#: ``target`` (its leases are forfeited back to the pool).
FAULT_KINDS = ("crash", "hang", "straggler", "recv_drop", "recv_delay",
               "join", "leave")

#: Injection points: pool worker chunk, distributed/SPMD rank, SimComm
#: receive, simulated-GPU block, elastic membership layer.
FAULT_SITES = ("pool", "rank", "comm", "gpu", "membership")


class FaultInjected(RuntimeError):
    """Raised at an injection point to simulate a failure."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Parameters
    ----------
    kind:
        ``"crash"`` (the unit dies), ``"hang"`` (it blocks past any
        deadline), ``"straggler"`` (it is slow but correct),
        ``"recv_drop"`` / ``"recv_delay"`` (one message is lost /
        delayed in transit — ``comm`` site only).
    site:
        Where the fault fires (see :data:`FAULT_SITES`).
    target:
        Site-local index: chunk index (pool), rank (rank/comm, matched
        against the *receiving* rank for comm faults), block id (gpu).
    at_call:
        Which arg-max call (greedy iteration) the fault fires on;
        ``None`` matches any call.
    count:
        How many times the fault fires before it is spent.  ``1``
        (default) models a transient fault, ``-1`` a persistent one
        (a dead node stays dead — retry cannot help, only
        rescheduling or a checkpoint can).
    delay_s:
        Sleep injected for ``hang`` / ``straggler`` / ``recv_delay``.
        For ``membership``-site churn specs this is instead the
        **progress fraction** (completed leases / total leases, in
        ``[0, 1]``) the solve must reach before the churn fires — a
        deterministic "mid-solve" trigger that does not depend on wall
        time.
    slowdown:
        Cycle multiplier for a ``gpu``-site straggler.
    """

    kind: str
    site: str
    target: int = 0
    at_call: "int | None" = None
    count: int = 1
    delay_s: float = 0.05
    slowdown: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {self.site!r}")
        if self.count == 0:
            raise ValueError("count must be positive or -1 (persistent)")
        if (self.kind in ("join", "leave")) != (self.site == "membership"):
            raise ValueError(
                "join/leave faults fire at the membership site (and only "
                "join/leave may target it)"
            )


@dataclass
class FaultPlan:
    """An ordered set of planned faults with one-shot matching.

    ``take(site, target, call)`` returns the first matching live spec
    and decrements its remaining count; a spent spec never fires again,
    so a retried or rescheduled unit of work sees a clean execution.
    Matching is thread-safe (SPMD ranks run on threads).
    """

    specs: tuple[FaultSpec, ...] = ()
    _remaining: dict = field(default_factory=dict, init=False, repr=False, compare=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.specs = tuple(self.specs)
        self._remaining = {i: s.count for i, s in enumerate(self.specs)}

    def take(self, site: str, target: int, call: "int | None" = None) -> "FaultSpec | None":
        """Consume and return the first live fault matching the site event."""
        with self._lock:
            for i, spec in enumerate(self.specs):
                if spec.site != site or spec.target != target:
                    continue
                if spec.at_call is not None and call is not None and spec.at_call != call:
                    continue
                left = self._remaining[i]
                if left == 0:
                    continue
                if left > 0:
                    self._remaining[i] = left - 1
                return spec
        return None

    def peek(self, site: str, target: int, call: "int | None" = None) -> "FaultSpec | None":
        """Like :meth:`take` but without consuming the fault."""
        with self._lock:
            for i, spec in enumerate(self.specs):
                if spec.site != site or spec.target != target:
                    continue
                if spec.at_call is not None and call is not None and spec.at_call != call:
                    continue
                if self._remaining[i] != 0:
                    return spec
        return None

    def take_churn(self, call: "int | None", fraction: float) -> "list[FaultSpec]":
        """Consume every membership churn spec that is due.

        A ``membership``-site spec fires once the solve's completed-lease
        ``fraction`` reaches its ``delay_s`` threshold (and its
        ``at_call`` matches).  All due specs are consumed and returned
        together, in plan order, so a simultaneous leave+join scenario
        (±20 % fleet swap) applies atomically between grant rounds.
        """
        fired: "list[FaultSpec]" = []
        with self._lock:
            for i, spec in enumerate(self.specs):
                if spec.site != "membership":
                    continue
                if spec.at_call is not None and call is not None and spec.at_call != call:
                    continue
                if fraction < spec.delay_s:
                    continue
                left = self._remaining[i]
                if left == 0:
                    continue
                if left > 0:
                    self._remaining[i] = left - 1
                fired.append(spec)
        return fired

    @classmethod
    def churn(
        cls,
        n_ranks: int,
        fraction: float = 0.2,
        at_call: "int | None" = None,
        leave_at: float = 0.2,
        join_at: float = 0.4,
    ) -> "FaultPlan":
        """A ±``fraction`` fleet-size scenario: the highest-numbered
        ``round(n_ranks * fraction)`` ranks leave once the solve is
        ``leave_at`` done, and the same number of fresh ranks join at
        ``join_at`` — the mid-solve churn shape of the elastic benchmark.
        """
        k = max(1, round(n_ranks * fraction))
        leaves = tuple(
            FaultSpec(
                kind="leave", site="membership", target=n_ranks - 1 - i,
                at_call=at_call, delay_s=leave_at,
            )
            for i in range(min(k, n_ranks - 1))  # never drain the last rank
        )
        join = FaultSpec(
            kind="join", site="membership", target=k,
            at_call=at_call, delay_s=join_at,
        )
        return cls(specs=leaves + (join,))

    @property
    def n_pending(self) -> int:
        """Faults that have not fully fired yet (persistent count as 1)."""
        with self._lock:
            return sum(1 for left in self._remaining.values() if left != 0)

    def reset(self) -> None:
        """Re-arm every spec (for replaying the identical scenario)."""
        with self._lock:
            self._remaining = {i: s.count for i, s in enumerate(self.specs)}

    @classmethod
    def random(
        cls,
        seed: int,
        n_faults: int = 3,
        sites: tuple[str, ...] = ("pool", "rank"),
        kinds: tuple[str, ...] = ("crash", "hang", "straggler"),
        max_target: int = 4,
        max_call: int = 3,
        delay_s: float = 0.05,
    ) -> "FaultPlan":
        """Derive a reproducible plan from a seed (same seed, same plan)."""
        import random as _random

        rng = _random.Random(seed)
        specs = tuple(
            FaultSpec(
                kind=rng.choice(kinds),
                site=rng.choice(sites),
                target=rng.randrange(max_target),
                at_call=rng.randrange(max_call),
                delay_s=delay_s,
            )
            for _ in range(n_faults)
        )
        return cls(specs=specs)

    def describe(self) -> str:
        lines = [f"FaultPlan: {len(self.specs)} planned faults"]
        with self._lock:
            for i, s in enumerate(self.specs):
                left = self._remaining[i]
                state = "persistent" if left < 0 else f"{left} left"
                at = "any call" if s.at_call is None else f"call {s.at_call}"
                lines.append(
                    f"  {s.kind:10s} @ {s.site}/{s.target} ({at}) [{state}]"
                )
        return "\n".join(lines)
