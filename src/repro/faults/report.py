"""Per-run accounting of detected faults and recovery actions.

A :class:`FaultReport` is what an operator reads after a degraded run:
every detected fault (what, where, which arg-max call), every retry, and
every λ-range that was re-cut from a dead rank onto survivors.  The
engines append to it as they recover; the solver attaches it to the
:class:`repro.core.solver.MultiHitResult` so degradation is visible in
the output, not just in a warning that scrolled by.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.telemetry.session import get_telemetry

__all__ = ["FaultEvent", "FaultReport", "RescheduledRange"]


@dataclass(frozen=True)
class FaultEvent:
    """One detected fault and the action taken on it.

    ``action`` is one of ``"resubmitted"`` (retried on the original
    executor), ``"inline-retry"`` (recovered in the parent),
    ``"rescheduled"`` (range re-cut across survivors), ``"restarted"``
    (SPMD world relaunched on survivors), or ``"observed"`` (detected
    but the result was kept, e.g. a straggler that finished)."""

    kind: str
    site: str
    target: int
    call: int
    action: str
    attempt: int = 1
    detail: str = ""
    # The causal trace the fault occurred inside (None when telemetry
    # is off) — joins a fault entry against the span timeline and the
    # flight-recorder black box that share the same trace id.
    trace_id: "str | None" = None


@dataclass(frozen=True)
class RescheduledRange:
    """A dead rank's λ sub-range handed to a survivor."""

    dead_rank: int
    survivor: int
    lam_start: int
    lam_end: int
    call: int = 0


@dataclass
class FaultReport:
    """Accumulated fault/recovery record for one run."""

    events: list[FaultEvent] = field(default_factory=list)
    rescheduled: list[RescheduledRange] = field(default_factory=list)

    def record(
        self,
        kind: str,
        site: str,
        target: int,
        call: int,
        action: str,
        attempt: int = 1,
        detail: str = "",
    ) -> None:
        telemetry = get_telemetry()
        trace_id = telemetry.trace_id if telemetry.enabled else None
        self.events.append(
            FaultEvent(
                kind=kind,
                site=site,
                target=target,
                call=call,
                action=action,
                attempt=attempt,
                detail=detail,
                trace_id=trace_id,
            )
        )
        # Live-route every fault/recovery event into the telemetry
        # metrics registry (so degraded runs show up in exported
        # summaries) and onto the flight recorder's ring (so the black
        # box shows the fault sequence leading up to a dump).
        if telemetry.enabled:
            telemetry.metrics.record_fault_event(kind, site, action)
        if telemetry.flight is not None:
            telemetry.flight.record_fault(
                kind, site, target, call, action, detail=detail,
                trace_id=trace_id,
            )

    def record_reschedule(
        self, dead_rank: int, survivor: int, lam_start: int, lam_end: int, call: int = 0
    ) -> None:
        self.rescheduled.append(
            RescheduledRange(
                dead_rank=dead_rank,
                survivor=survivor,
                lam_start=lam_start,
                lam_end=lam_end,
                call=call,
            )
        )
        telemetry = get_telemetry()
        telemetry.count("faults.rescheduled_ranges")
        if telemetry.flight is not None:
            telemetry.flight.note(
                "reschedule",
                dead_rank=dead_rank,
                survivor=survivor,
                lam_start=lam_start,
                lam_end=lam_end,
                call=call,
            )

    def merge(self, other: "FaultReport") -> None:
        self.events.extend(other.events)
        self.rescheduled.extend(other.rescheduled)

    @property
    def n_detected(self) -> int:
        return len(self.events)

    @property
    def n_retries(self) -> int:
        return sum(
            1 for e in self.events if e.action in ("resubmitted", "inline-retry")
        )

    @property
    def n_rescheduled(self) -> int:
        return len(self.rescheduled)

    @property
    def dead_ranks(self) -> tuple[int, ...]:
        return tuple(sorted({r.dead_rank for r in self.rescheduled}))

    def describe(self) -> str:
        lines = [
            f"FaultReport: {self.n_detected} detected "
            f"({self.n_retries} retried, {self.n_rescheduled} ranges rescheduled)"
        ]
        for e in self.events:
            detail = f"  [{e.detail}]" if e.detail else ""
            lines.append(
                f"  call {e.call}: {e.kind} @ {e.site}/{e.target} -> "
                f"{e.action} (attempt {e.attempt}){detail}"
            )
        for r in self.rescheduled:
            lines.append(
                f"  call {r.call}: rank {r.dead_rank} range "
                f"[{r.lam_start}, {r.lam_end}) -> survivor {r.survivor}"
            )
        return "\n".join(lines)
