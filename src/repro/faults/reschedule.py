"""Survivor rescheduling: re-cut a dead rank's λ-range equi-area.

When a rank is declared dead, its partitions' thread ranges still have
to be searched — by someone — before the iteration's reduction can
complete.  The re-cut uses the same O(G) equi-area level walk as the
original schedule (:func:`repro.scheduling.equiarea.equiarea_range_boundaries`),
so the extra work lands on survivors in equal-work shares; because every
engine reduces candidates under the library-wide total order, searching
the same grid in different pieces yields a bit-identical winner.
"""

from __future__ import annotations

from repro.scheduling.equiarea import equiarea_range_boundaries
from repro.scheduling.schedule import Schedule

__all__ = ["reschedule_ranges", "reschedule_ranges_aligned", "rank_partitions"]


def rank_partitions(schedule: Schedule, rank: int, gpus_per_rank: int) -> list[int]:
    """The partition ids owned by ``rank`` (same mapping as rank_best_combo)."""
    return [
        rank * gpus_per_rank + local
        for local in range(gpus_per_rank)
        if rank * gpus_per_rank + local < schedule.n_parts
    ]


def reschedule_ranges(
    schedule: Schedule,
    dead_parts: "list[int]",
    n_survivors: int,
) -> "list[list[tuple[int, int, int]]]":
    """Equi-area shares of the dead partitions, one list per survivor.

    Each dead partition's ``[lo, hi)`` range is cut into ``n_survivors``
    equal-work pieces; survivor ``j`` receives ``(part, lo_j, hi_j)``
    triples (the origin partition travels along so reports can attribute
    rescheduled work to the rank that lost it).  Piece assignment
    rotates with the partition index so consecutive dead partitions do
    not all hand their first piece to survivor 0.  Empty pieces are
    dropped.
    """
    if n_survivors < 1:
        raise ValueError("need at least one survivor")
    shares: "list[list[tuple[int, int, int]]]" = [[] for _ in range(n_survivors)]
    for k, part in enumerate(sorted(dead_parts)):
        lo, hi = schedule.thread_range(part)
        if hi <= lo:
            continue
        bounds = equiarea_range_boundaries(
            schedule.scheme, schedule.g, lo, hi, n_survivors
        )
        for j in range(n_survivors):
            a, b = bounds[j], bounds[j + 1]
            if b > a:
                shares[(j + k) % n_survivors].append((part, a, b))
    return shares


def reschedule_ranges_aligned(
    schedule: Schedule,
    dead_parts: "list[int]",
    n_survivors: int,
    boundaries: "tuple[int, ...]",
) -> "list[list[tuple[int, int, int]]]":
    """Like :func:`reschedule_ranges`, but pieces stay block-aligned.

    Every interior re-cut point is snapped to the nearest entry of
    ``boundaries`` (a :class:`repro.core.bounds.BoundTable`'s block
    boundaries) inside the dead partition's range.  Partition cuts are
    merged into the table at build time, so each partition's ``lo`` /
    ``hi`` are already boundaries — snapping only the interior points
    therefore yields pieces that are whole numbers of λ-blocks, and a
    survivor can rebuild its slice of the bound table and keep the CELF
    pruning speedup on rescheduled work (the PR 4 gap: rescheduled
    ranges used to have arbitrary geometry and always ran unpruned).

    Snapping trades some balance for alignment; with blocks much finer
    than partitions the skew is a fraction of one block's work.
    Degenerate snaps (two cut points collapsing onto the same boundary)
    drop the empty piece, exactly like empty equi-area pieces.
    """
    if n_survivors < 1:
        raise ValueError("need at least one survivor")
    import bisect

    sorted_bounds = sorted(boundaries)

    def snap(x: int, lo: int, hi: int) -> int:
        # Nearest boundary inside [lo, hi]; nearest-point projection onto
        # a sorted set is monotone, so snapped cuts stay ordered.
        i = bisect.bisect_left(sorted_bounds, x)
        candidates = [
            b
            for b in sorted_bounds[max(0, i - 1) : i + 1]
            if lo <= b <= hi
        ]
        if not candidates:
            return x  # no interior boundary: fall back to the raw cut
        return min(candidates, key=lambda b: (abs(b - x), b))

    shares: "list[list[tuple[int, int, int]]]" = [[] for _ in range(n_survivors)]
    for k, part in enumerate(sorted(dead_parts)):
        lo, hi = schedule.thread_range(part)
        if hi <= lo:
            continue
        cuts = list(
            equiarea_range_boundaries(
                schedule.scheme, schedule.g, lo, hi, n_survivors
            )
        )
        snapped = [lo] + [snap(c, lo, hi) for c in cuts[1:-1]] + [hi]
        for j in range(n_survivors):
            a, b = snapped[j], snapped[j + 1]
            if b > a:
                shares[(j + k) % n_survivors].append((part, a, b))
    return shares
