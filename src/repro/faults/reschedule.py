"""Survivor rescheduling: re-cut a dead rank's λ-range equi-area.

When a rank is declared dead, its partitions' thread ranges still have
to be searched — by someone — before the iteration's reduction can
complete.  The re-cut uses the same O(G) equi-area level walk as the
original schedule (:func:`repro.scheduling.equiarea.equiarea_range_boundaries`),
so the extra work lands on survivors in equal-work shares; because every
engine reduces candidates under the library-wide total order, searching
the same grid in different pieces yields a bit-identical winner.
"""

from __future__ import annotations

from repro.scheduling.equiarea import equiarea_range_boundaries
from repro.scheduling.schedule import Schedule

__all__ = ["reschedule_ranges", "rank_partitions"]


def rank_partitions(schedule: Schedule, rank: int, gpus_per_rank: int) -> list[int]:
    """The partition ids owned by ``rank`` (same mapping as rank_best_combo)."""
    return [
        rank * gpus_per_rank + local
        for local in range(gpus_per_rank)
        if rank * gpus_per_rank + local < schedule.n_parts
    ]


def reschedule_ranges(
    schedule: Schedule,
    dead_parts: "list[int]",
    n_survivors: int,
) -> "list[list[tuple[int, int, int]]]":
    """Equi-area shares of the dead partitions, one list per survivor.

    Each dead partition's ``[lo, hi)`` range is cut into ``n_survivors``
    equal-work pieces; survivor ``j`` receives ``(part, lo_j, hi_j)``
    triples (the origin partition travels along so reports can attribute
    rescheduled work to the rank that lost it).  Piece assignment
    rotates with the partition index so consecutive dead partitions do
    not all hand their first piece to survivor 0.  Empty pieces are
    dropped.
    """
    if n_survivors < 1:
        raise ValueError("need at least one survivor")
    shares: "list[list[tuple[int, int, int]]]" = [[] for _ in range(n_survivors)]
    for k, part in enumerate(sorted(dead_parts)):
        lo, hi = schedule.thread_range(part)
        if hi <= lo:
            continue
        bounds = equiarea_range_boundaries(
            schedule.scheme, schedule.g, lo, hi, n_survivors
        )
        for j in range(n_survivors):
            a, b = bounds[j], bounds[j + 1]
            if b > a:
                shares[(j + k) % n_survivors].append((part, a, b))
    return shares
