"""Shared retry/backoff policy for every recovery layer.

PR 1's pool backend recovered a lost chunk with an ad-hoc immediate
inline retry; the distributed rank loop and the SPMD runner need the
same decision ("how many times, with what backoff, under what
deadline?") made consistently.  :class:`RetryPolicy` centralizes it:

* ``resubmits`` — how many times a failed unit is re-submitted to its
  original executor (pool worker / rank) before falling back to the
  layer's last resort (inline recovery in the parent, or rescheduling
  the range across survivors);
* ``backoff_s`` / ``backoff_factor`` — exponential backoff between
  attempts (0 by default: tests and simulations should not sleep);
* ``deadline_s`` — per-unit detection deadline.  A chunk or rank that
  has not answered within the deadline is declared lost (the
  heartbeat/deadline failure detector);
* ``straggler_after_s`` — soft threshold: a unit that *completes* but
  took longer than this is recorded as a detected straggler (its result
  is kept — slow is not wrong).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    resubmits: int = 0
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    deadline_s: "float | None" = None
    straggler_after_s: "float | None" = None

    def __post_init__(self) -> None:
        if self.resubmits < 0:
            raise ValueError("resubmits must be >= 0")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    @property
    def max_attempts(self) -> int:
        """Total executor attempts before the last-resort path."""
        return 1 + self.resubmits

    def backoff(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return self.backoff_s * self.backoff_factor ** (attempt - 1)

    def sleep_before(self, attempt: int) -> None:
        delay = self.backoff(attempt)
        if delay > 0:
            time.sleep(delay)

    def is_straggler(self, wall_seconds: float) -> bool:
        return (
            self.straggler_after_s is not None
            and wall_seconds > self.straggler_after_s
        )
