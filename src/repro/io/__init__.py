"""Result serialization (JSON round-trip for solver outputs)."""

from repro.io.results import load_result, result_to_dict, save_result

__all__ = ["result_to_dict", "save_result", "load_result"]
