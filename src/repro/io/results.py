"""JSON serialization of solver results.

The original pipeline writes the identified combinations to the
supporting-information tables; this module round-trips a
:class:`repro.core.MultiHitResult` through JSON so runs can be archived
and re-scored without re-solving.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.combination import MultiHitCombination
from repro.core.fscore import FScoreParams
from repro.core.kernels import KernelCounters
from repro.core.solver import IterationRecord, MultiHitResult

__all__ = ["result_to_dict", "save_result", "load_result"]


def result_to_dict(result: MultiHitResult) -> dict:
    """Plain-JSON representation of a solver run."""
    return {
        "params": {
            "n_tumor": result.params.n_tumor,
            "n_normal": result.params.n_normal,
            "alpha": result.params.alpha,
        },
        "uncovered": result.uncovered,
        "counters": {
            "combos_scored": result.counters.combos_scored,
            "word_reads": result.counters.word_reads,
            "word_ops": result.counters.word_ops,
            "combos_pruned": result.counters.combos_pruned,
            "blocks_scanned": result.counters.blocks_scanned,
            "blocks_skipped": result.counters.blocks_skipped,
        },
        "combinations": [
            {"genes": list(c.genes), "f": c.f, "tp": c.tp, "tn": c.tn}
            for c in result.combinations
        ],
        "iterations": [
            {
                "iteration": r.iteration,
                "genes": list(r.combination.genes),
                "newly_covered": r.newly_covered,
                "remaining_before": r.remaining_before,
                "remaining_after": r.remaining_after,
                "tumor_words": r.tumor_words,
                "wall_seconds": r.wall_seconds,
                "combos_scored": r.combos_scored,
                "combos_pruned": r.combos_pruned,
                "word_reads": r.word_reads,
            }
            for r in result.iterations
        ],
    }


def save_result(result: MultiHitResult, path: "str | Path") -> None:
    Path(path).write_text(json.dumps(result_to_dict(result), indent=2) + "\n")


def load_result(path: "str | Path") -> MultiHitResult:
    """Rebuild a :class:`MultiHitResult` from :func:`save_result` output."""
    raw = json.loads(Path(path).read_text())
    params = FScoreParams(**raw["params"])
    combos = [
        MultiHitCombination(
            genes=tuple(c["genes"]), f=c["f"], tp=c["tp"], tn=c["tn"]
        )
        for c in raw["combinations"]
    ]
    by_genes = {c.genes: c for c in combos}
    iterations = [
        IterationRecord(
            iteration=r["iteration"],
            combination=by_genes[tuple(r["genes"])],
            newly_covered=r["newly_covered"],
            remaining_before=r["remaining_before"],
            remaining_after=r["remaining_after"],
            tumor_words=r["tumor_words"],
            wall_seconds=r["wall_seconds"],
            combos_scored=r.get("combos_scored", 0),
            combos_pruned=r.get("combos_pruned", 0),
            word_reads=r.get("word_reads", 0),
        )
        for r in raw["iterations"]
    ]
    counters = KernelCounters(**raw["counters"])
    return MultiHitResult(
        combinations=combos,
        iterations=iterations,
        params=params,
        uncovered=raw["uncovered"],
        counters=counters,
    )
