"""Driver-vs-passenger discrimination: gene-level vs mutation-level.

The paper's Fig. 10 discussion: the gene-level search selects IDH1 (a
real driver, all signal at R132) *and* MUC6 (a passenger, signal spread
uniformly) because at gene resolution both look like "frequently mutated
in tumors".  At mutation resolution the hotspot feature IDH1:132 remains
strong while each individual MUC6 position is noise, so the
mutation-level search isolates true driver positions.

:func:`compare_resolutions` runs both searches on the same positional
cohort and scores how many selected items are planted hotspot positions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.solver import MultiHitSolver
from repro.data.matrices import GeneSampleMatrix
from repro.mutlevel.solver import MutationLevelResult, solve_mutation_level
from repro.mutlevel.synthesis import PositionalCohort

__all__ = ["DiscriminationReport", "compare_resolutions"]


@dataclass(frozen=True)
class DiscriminationReport:
    """How precisely each resolution pinpointed the planted drivers."""

    gene_level_combos: list[tuple[str, ...]]
    mutation_level_combos: list[tuple[str, ...]]
    gene_driver_precision: float
    mutation_hotspot_precision: float
    hotspot_features_found: int
    planted_hotspots: int

    @property
    def mutation_level_sharper(self) -> bool:
        return self.mutation_hotspot_precision >= self.gene_driver_precision


def compare_resolutions(
    cohort: PositionalCohort,
    hits: "int | None" = None,
    max_iterations: int = 6,
    min_recurrence: int = 2,
) -> DiscriminationReport:
    """Solve the same cohort at gene and at mutation resolution.

    *Precision* counts, over the first ``max_iterations`` combinations,
    the fraction of selected items that are planted drivers (genes) or
    planted hotspot positions (features).
    """
    cfg = cohort.config
    hits = hits or cfg.hits

    # Mutation level -----------------------------------------------------
    tumor_m = cohort.tumor_matrix(min_recurrence=min_recurrence)
    normal_m = cohort.normal_matrix(features=tumor_m)
    mut: MutationLevelResult = solve_mutation_level(
        tumor_m, normal_m, hits=hits, max_iterations=max_iterations
    )
    hotspot_set = {
        (cohort.gene_name(g), pos) for g, pos in cohort.hotspots.items()
    }
    picked_features = [f for combo in mut.combinations for f in combo]
    hot_hits = sum(
        1 for f in picked_features if (f.gene, f.position_bin) in hotspot_set
    )
    unique_hot = len(
        {(f.gene, f.position_bin) for f in picked_features} & hotspot_set
    )
    mut_precision = hot_hits / len(picked_features) if picked_features else 0.0

    # Gene level — built from all calls, not the recurrence-filtered
    # feature view (which would hide the normals' scattered background).
    gene_dense, normal_dense, gene_names = cohort.gene_matrices()
    gene_matrix = GeneSampleMatrix(gene_dense, gene_names, cohort.tumor_samples)
    normal_matrix = GeneSampleMatrix(normal_dense, gene_names, cohort.normal_samples)
    gene_res = MultiHitSolver(hits=hits, max_iterations=max_iterations).solve(
        gene_matrix.values, normal_matrix.values
    )
    driver_names = {cohort.gene_name(g) for combo in cohort.planted for g in combo}
    gene_combos = [
        tuple(gene_names[g] for g in c.genes) for c in gene_res.combinations
    ]
    picked_genes = [g for combo in gene_combos for g in combo]
    gene_hits = sum(1 for g in picked_genes if g in driver_names)
    gene_precision = gene_hits / len(picked_genes) if picked_genes else 0.0

    return DiscriminationReport(
        gene_level_combos=gene_combos,
        mutation_level_combos=mut.labels,
        gene_driver_precision=gene_precision,
        mutation_hotspot_precision=mut_precision,
        hotspot_features_found=unique_hot,
        planted_hotspots=len(hotspot_set),
    )
