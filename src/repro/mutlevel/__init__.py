"""Mutation-level multi-hit search — the paper's §V extension.

The gene-level algorithm flags whole genes, so a combination can mix a
true driver (IDH1, hotspot at R132) with passenger genes (MUC6) that are
merely frequently mutated.  §V proposes searching combinations of
*specific mutations within genes* instead: the input becomes a
mutation-sample matrix (~4e5 protein-altering mutation features instead
of ~2e4 genes, ~20x larger), and the search cost grows by ~1e5.

This package implements that extension end-to-end at laptop scale:

* :mod:`features` — (gene, position-bin) mutation features and the
  expansion of positional call data into mutation-sample matrices;
* :mod:`synthesis` — positional cohorts where drivers act through
  specific hotspot positions while passenger mutations scatter;
* :mod:`solver` — the same greedy WSC engines run over mutation
  features, with results mapped back to labeled (gene, position) tuples;
* :mod:`discrimination` — the driver-vs-passenger analysis: show the
  mutation-level search isolates hotspot features that the gene-level
  search cannot distinguish;
* :mod:`projection` — §V's computational-requirement arithmetic
  (mutation-level ~1e5x, each extra hit ~4e5x, full-Summit 27648 GPUs).
"""

from repro.mutlevel.features import MutationFeature, MutationMatrix, expand_calls
from repro.mutlevel.synthesis import (
    PositionalCohort,
    PositionalCohortConfig,
    generate_positional_cohort,
)
from repro.mutlevel.solver import MutationLevelResult, solve_mutation_level
from repro.mutlevel.discrimination import DiscriminationReport, compare_resolutions
from repro.mutlevel.classifier import ResolutionComparison, evaluate_resolutions
from repro.mutlevel.projection import (
    extra_hit_factor,
    mutation_level_factor,
    required_speedup,
)

__all__ = [
    "MutationFeature",
    "MutationMatrix",
    "expand_calls",
    "PositionalCohort",
    "PositionalCohortConfig",
    "generate_positional_cohort",
    "MutationLevelResult",
    "solve_mutation_level",
    "DiscriminationReport",
    "compare_resolutions",
    "ResolutionComparison",
    "evaluate_resolutions",
    "required_speedup",
    "mutation_level_factor",
    "extra_hit_factor",
]
