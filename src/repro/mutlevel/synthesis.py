"""Positional cohort synthesis for the mutation-level extension.

Extends the planted-combination model down to protein positions: each
driver gene acts through a specific *hotspot position* (IDH1-R132
style), while passenger mutations land uniformly along each gene.  The
gene-level view of such a cohort is exactly what
:mod:`repro.data.synthesis` produces; the positional view additionally
lets the mutation-level search separate the hotspot from same-gene
passenger noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.maf import MafRecord
from repro.mutlevel.features import MutationMatrix, expand_calls

__all__ = ["PositionalCohortConfig", "PositionalCohort", "generate_positional_cohort"]


@dataclass(frozen=True)
class PositionalCohortConfig:
    """Generative parameters for a positional cohort."""

    n_genes: int
    n_tumor: int
    n_normal: int
    hits: int = 3
    n_driver_combos: int = 2
    protein_length: int = 400
    driver_penetrance: float = 0.95
    sporadic_fraction: float = 0.08
    background_rate: float = 0.06
    # Probability that a *background* mutation in a driver gene lands on
    # the hotspot anyway (sequencing noise / recurrent passengers).
    hotspot_leak: float = 0.02
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_genes < self.hits * self.n_driver_combos:
            raise ValueError("not enough genes for disjoint driver combos")
        if self.protein_length < 2:
            raise ValueError("protein_length must allow hotspot + background")


@dataclass(frozen=True)
class PositionalCohort:
    """Positional calls plus ground truth."""

    config: PositionalCohortConfig
    tumor_calls: list[MafRecord]
    normal_calls: list[MafRecord]
    tumor_samples: tuple[str, ...]
    normal_samples: tuple[str, ...]
    planted: tuple[tuple[int, ...], ...]  # gene indices
    hotspots: dict[int, int]  # driver gene index -> hotspot position

    def gene_name(self, idx: int) -> str:
        return f"G{idx:05d}"

    def tumor_matrix(self, bin_size: int = 1, min_recurrence: int = 1) -> MutationMatrix:
        return expand_calls(
            self.tumor_calls,
            samples=list(self.tumor_samples),
            bin_size=bin_size,
            min_recurrence=min_recurrence,
        )

    def gene_matrices(self):
        """Gene-level view built from *all* calls (no recurrence filter).

        Returns ``(tumor_dense, normal_dense, gene_names)``.  This is the
        honest gene-level baseline: collapsing the recurrence-filtered
        feature matrix instead would silently drop the normals' scattered
        background calls and overstate gene-level specificity.
        """
        genes = sorted({r.gene for r in self.tumor_calls}
                       | {r.gene for r in self.normal_calls})
        gene_idx = {g: i for i, g in enumerate(genes)}
        t = np.zeros((len(genes), len(self.tumor_samples)), dtype=bool)
        n = np.zeros((len(genes), len(self.normal_samples)), dtype=bool)
        t_sample = {s: i for i, s in enumerate(self.tumor_samples)}
        n_sample = {s: i for i, s in enumerate(self.normal_samples)}
        for r in self.tumor_calls:
            t[gene_idx[r.gene], t_sample[r.sample]] = True
        for r in self.normal_calls:
            n[gene_idx[r.gene], n_sample[r.sample]] = True
        return t, n, tuple(genes)

    def normal_matrix(
        self,
        features: "MutationMatrix | None" = None,
        bin_size: int = 1,
    ) -> MutationMatrix:
        """Normal-sample matrix, aligned to a tumor feature universe.

        Alignment matters: the solver needs the same rows in both
        matrices, and features are defined by what recurs in tumors.
        """
        raw = expand_calls(
            self.normal_calls, samples=list(self.normal_samples), bin_size=bin_size
        )
        if features is None:
            return raw
        lookup = {(f.gene, f.position_bin): i for i, f in enumerate(raw.features)}
        values = np.zeros((len(features.features), len(self.normal_samples)), dtype=bool)
        for out_idx, f in enumerate(features.features):
            src = lookup.get((f.gene, f.position_bin))
            if src is not None:
                values[out_idx] = raw.values[src]
        return MutationMatrix(
            values=values,
            features=features.features,
            sample_ids=tuple(self.normal_samples),
        )


def _background_calls(
    rng: np.random.Generator,
    cfg: PositionalCohortConfig,
    sample_names: "tuple[str, ...]",
    hotspots: dict[int, int],
) -> list[MafRecord]:
    calls = []
    for g in range(cfg.n_genes):
        mutated = np.flatnonzero(rng.random(len(sample_names)) < cfg.background_rate)
        for s in mutated:
            if g in hotspots and rng.random() < cfg.hotspot_leak:
                pos = hotspots[g]
            else:
                pos = int(rng.integers(1, cfg.protein_length + 1))
            calls.append(MafRecord(f"G{g:05d}", sample_names[s], pos))
    return calls


def generate_positional_cohort(cfg: PositionalCohortConfig) -> PositionalCohort:
    """Generate positional tumor/normal calls with planted hotspot drivers."""
    rng = np.random.default_rng(cfg.seed)
    tumor_samples = tuple(f"T{i:04d}" for i in range(cfg.n_tumor))
    normal_samples = tuple(f"N{i:04d}" for i in range(cfg.n_normal))

    driver_genes = rng.choice(
        cfg.n_genes, size=cfg.hits * cfg.n_driver_combos, replace=False
    )
    planted = tuple(
        tuple(sorted(int(x) for x in driver_genes[c * cfg.hits : (c + 1) * cfg.hits]))
        for c in range(cfg.n_driver_combos)
    )
    hotspots = {
        int(g): int(rng.integers(1, cfg.protein_length + 1)) for g in driver_genes
    }

    tumor_calls = _background_calls(rng, cfg, tumor_samples, hotspots)
    normal_calls = _background_calls(rng, cfg, normal_samples, hotspots)

    assignment = rng.integers(0, cfg.n_driver_combos, size=cfg.n_tumor)
    assignment[rng.random(cfg.n_tumor) < cfg.sporadic_fraction] = -1
    for s, combo_idx in enumerate(assignment):
        if combo_idx < 0:
            continue
        for g in planted[combo_idx]:
            if rng.random() < cfg.driver_penetrance:
                tumor_calls.append(
                    MafRecord(f"G{g:05d}", tumor_samples[s], hotspots[g])
                )
    return PositionalCohort(
        config=cfg,
        tumor_calls=tumor_calls,
        normal_calls=normal_calls,
        tumor_samples=tumor_samples,
        normal_samples=normal_samples,
        planted=planted,
        hotspots=hotspots,
    )
