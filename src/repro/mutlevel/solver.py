"""Mutation-level solving: the gene-level engines over feature rows.

The engines are resolution-agnostic — they see packed bit rows.  This
module wires mutation matrices through :class:`MultiHitSolver` and maps
the winning row indices back to labeled features.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.solver import MultiHitResult, MultiHitSolver
from repro.mutlevel.features import MutationFeature, MutationMatrix

__all__ = ["MutationLevelResult", "solve_mutation_level"]


@dataclass(frozen=True)
class MutationLevelResult:
    """A solver run whose rows are mutation features."""

    raw: MultiHitResult
    features: tuple[MutationFeature, ...]

    @property
    def combinations(self) -> list[tuple[MutationFeature, ...]]:
        return [
            tuple(self.features[g] for g in c.genes) for c in self.raw.combinations
        ]

    @property
    def labels(self) -> list[tuple[str, ...]]:
        return [tuple(f.label for f in combo) for combo in self.combinations]

    @property
    def coverage(self) -> float:
        return self.raw.coverage

    def genes_of(self, combo_index: int) -> tuple[str, ...]:
        """The gene names behind one combination (for gene-level comparison)."""
        return tuple(sorted({f.gene for f in self.combinations[combo_index]}))


def solve_mutation_level(
    tumor: MutationMatrix,
    normal: MutationMatrix,
    hits: int = 3,
    **solver_kwargs,
) -> MutationLevelResult:
    """Run the greedy multi-hit search over mutation features.

    ``tumor`` and ``normal`` must share a feature universe (build the
    normal matrix with ``PositionalCohort.normal_matrix(features=...)``).
    """
    if tumor.features != normal.features:
        raise ValueError("tumor and normal matrices must share features")
    solver = MultiHitSolver(hits=hits, **solver_kwargs)
    raw = solver.solve(tumor.values, normal.values)
    return MutationLevelResult(raw=raw, features=tumor.features)
