"""Mutation features: (gene, position-bin) columns of the expanded matrix.

A *feature* is a specific protein position (or bin of positions) within
a gene; a sample carries the feature iff it has a protein-altering call
at that position.  Binning controls the expansion factor: bin size 1
gives exact positions; coarser bins trade resolution for matrix size
(the paper quotes ~20x larger inputs at mutation level).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitmatrix.matrix import BitMatrix
from repro.data.maf import MafRecord

__all__ = ["MutationFeature", "MutationMatrix", "expand_calls"]


@dataclass(frozen=True, order=True)
class MutationFeature:
    """One column of the mutation-sample matrix."""

    gene: str
    position_bin: int  # first position of the bin (1-based)
    bin_size: int = 1

    @property
    def label(self) -> str:
        if self.bin_size == 1:
            return f"{self.gene}:{self.position_bin}"
        return f"{self.gene}:{self.position_bin}-{self.position_bin + self.bin_size - 1}"

    def contains(self, position: int) -> bool:
        return self.position_bin <= position < self.position_bin + self.bin_size


@dataclass(frozen=True)
class MutationMatrix:
    """A feature-sample matrix with its feature labels.

    ``values[f, s]`` is True iff sample ``s`` has a call inside feature
    ``f``.  The same BitMatrix engines that process gene-sample matrices
    process this — the extension is purely a change of row universe.
    """

    values: np.ndarray  # (features, samples) bool
    features: tuple[MutationFeature, ...]
    sample_ids: tuple[str, ...]

    def __post_init__(self) -> None:
        v = np.asarray(self.values, dtype=bool)
        object.__setattr__(self, "values", v)
        object.__setattr__(self, "features", tuple(self.features))
        object.__setattr__(self, "sample_ids", tuple(self.sample_ids))
        if v.ndim != 2:
            raise ValueError(f"values must be 2-D, got {v.shape}")
        if v.shape[0] != len(self.features):
            raise ValueError(
                f"{v.shape[0]} rows vs {len(self.features)} features"
            )
        if v.shape[1] != len(self.sample_ids):
            raise ValueError(
                f"{v.shape[1]} columns vs {len(self.sample_ids)} sample ids"
            )

    @property
    def n_features(self) -> int:
        return self.values.shape[0]

    @property
    def n_samples(self) -> int:
        return self.values.shape[1]

    def to_bitmatrix(self) -> BitMatrix:
        return BitMatrix.from_dense(self.values)

    def feature_index(self, gene: str, position: int) -> int:
        """Index of the feature containing ``gene:position``."""
        for idx, f in enumerate(self.features):
            if f.gene == gene and f.contains(position):
                return idx
        raise KeyError(f"no feature covering {gene}:{position}")

    def collapse_to_genes(self) -> tuple[np.ndarray, tuple[str, ...]]:
        """OR features of each gene back into a gene-sample matrix.

        Returns (dense matrix, gene names) — the gene-level view of the
        same calls, used by the resolution-comparison analysis.
        """
        genes = sorted({f.gene for f in self.features})
        gene_idx = {g: i for i, g in enumerate(genes)}
        out = np.zeros((len(genes), self.n_samples), dtype=bool)
        for f_idx, f in enumerate(self.features):
            out[gene_idx[f.gene]] |= self.values[f_idx]
        return out, tuple(genes)


def expand_calls(
    records: list[MafRecord],
    samples: "list[str] | None" = None,
    bin_size: int = 1,
    min_recurrence: int = 1,
) -> MutationMatrix:
    """Expand positional calls into a mutation-sample matrix.

    ``min_recurrence`` drops features seen in fewer samples — §V strategy
    (3): "limit combinations to the most probable oncogenic mutations".
    Features are sorted (gene, position) for determinism.
    """
    if bin_size < 1:
        raise ValueError("bin_size must be >= 1")
    used = [r for r in records if r.protein_altering]
    if samples is None:
        samples = sorted({r.sample for r in used})
    sample_idx = {s: i for i, s in enumerate(samples)}

    carriers: dict[MutationFeature, set[int]] = {}
    for r in used:
        s = sample_idx.get(r.sample)
        if s is None:
            continue
        binned = ((r.protein_position - 1) // bin_size) * bin_size + 1
        feat = MutationFeature(gene=r.gene, position_bin=binned, bin_size=bin_size)
        carriers.setdefault(feat, set()).add(s)

    kept = sorted(f for f, c in carriers.items() if len(c) >= min_recurrence)
    values = np.zeros((len(kept), len(samples)), dtype=bool)
    for idx, f in enumerate(kept):
        values[idx, sorted(carriers[f])] = True
    return MutationMatrix(values=values, features=tuple(kept), sample_ids=tuple(samples))
