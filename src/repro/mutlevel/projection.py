"""§V computational-requirement arithmetic.

The paper estimates that moving the 4-hit search from ~2e4 genes to
~4e5 protein-altering mutations needs a ~1e5x speedup over the optimized
single-GPU runtime, and that each additional hit costs a further ~4e5x.
These follow directly from the C(M, h) search-space ratios; this module
implements the arithmetic and the full-Summit (27648 GPU) projection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "mutation_level_factor",
    "extra_hit_factor",
    "required_speedup",
    "FullSummitProjection",
    "project_full_summit",
]

GENES = 20_000
MUTATIONS = 400_000
FULL_SUMMIT_GPUS = 27_648


def mutation_level_factor(hits: int = 4, genes: int = GENES, mutations: int = MUTATIONS) -> float:
    """Search-space growth from gene to mutation features at fixed hits.

    ``C(4e5, 4) / C(2e4, 4) ~ (20)^4 = 1.6e5`` — the paper's "~1e5".
    """
    return math.comb(mutations, hits) / math.comb(genes, hits)


def extra_hit_factor(hits: int, features: int = MUTATIONS) -> float:
    """Cost growth from ``hits`` to ``hits + 1`` combinations.

    ``C(M, h+1) / C(M, h) = (M - h) / (h + 1) ~ 4e5 / 5 = 8e4`` for
    mutation-level 4->5 (the paper rounds to "~4e5" using M alone).
    """
    return math.comb(features, hits + 1) / math.comb(features, hits)


def required_speedup(
    target_hits: int = 4,
    mutation_level: bool = True,
    base_hits: int = 4,
    genes: int = GENES,
    mutations: int = MUTATIONS,
) -> float:
    """Speedup needed relative to the optimized gene-level 4-hit search."""
    base = math.comb(genes, base_hits)
    features = mutations if mutation_level else genes
    target = math.comb(features, target_hits)
    # Mutation-level rows are also ~20x wider (more features mutated per
    # sample does not change width; width is samples) — the paper notes
    # larger matrices increase memory traffic, not op counts; we return
    # the op-count ratio.
    return target / base


@dataclass(frozen=True)
class FullSummitProjection:
    """Estimated wall time on all 27648 Summit GPUs."""

    hits: int
    mutation_level: bool
    single_gpu_seconds: float
    n_gpus: int
    parallel_efficiency: float

    @property
    def projected_seconds(self) -> float:
        return self.single_gpu_seconds / (self.n_gpus * self.parallel_efficiency)

    @property
    def projected_days(self) -> float:
        return self.projected_seconds / 86400.0


def project_full_summit(
    gene_level_single_gpu_s: float,
    hits: int = 4,
    mutation_level: bool = True,
    n_gpus: int = FULL_SUMMIT_GPUS,
    parallel_efficiency: float = 0.8,
) -> FullSummitProjection:
    """Project a mutation-level run onto the full machine (§V strategy 1)."""
    factor = required_speedup(target_hits=hits, mutation_level=mutation_level)
    return FullSummitProjection(
        hits=hits,
        mutation_level=mutation_level,
        single_gpu_seconds=gene_level_single_gpu_s * factor,
        n_gpus=n_gpus,
        parallel_efficiency=parallel_efficiency,
    )
