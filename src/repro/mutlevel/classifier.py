"""Mutation-level classification: the Fig. 9 protocol at position resolution.

The paper's gene-level classifier calls a sample *tumor* if it carries
mutations in all genes of any found combination; at mutation level the
condition tightens to carrying calls at the specific *positions*.  A
passenger-heavy gene combination matches many normal samples (any
position in the gene counts), while a hotspot-position combination
almost never matches a normal sample — so the mutation-level classifier
trades a little sensitivity for a large specificity gain.  This module
runs both protocols on the same positional cohort and reports the
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.classifier import MultiHitClassifier
from repro.analysis.metrics import ClassifierPerformance, sensitivity_specificity
from repro.core.solver import MultiHitSolver
from repro.mutlevel.features import MutationMatrix
from repro.mutlevel.solver import solve_mutation_level
from repro.mutlevel.synthesis import PositionalCohort

__all__ = ["ResolutionComparison", "evaluate_resolutions"]


def _split_columns(n: int, train_fraction: float, seed: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    n_train = min(max(int(round(n * train_fraction)), 1), n - 1)
    return np.sort(perm[:n_train]), np.sort(perm[n_train:])


@dataclass(frozen=True)
class ResolutionComparison:
    """Held-out accuracy of the two resolutions on one cohort."""

    gene_level: ClassifierPerformance
    mutation_level: ClassifierPerformance

    @property
    def specificity_gain(self) -> float:
        return self.mutation_level.specificity - self.gene_level.specificity

    @property
    def sensitivity_cost(self) -> float:
        return self.gene_level.sensitivity - self.mutation_level.sensitivity


def evaluate_resolutions(
    cohort: PositionalCohort,
    hits: "int | None" = None,
    train_fraction: float = 0.75,
    max_iterations: int = 8,
    min_recurrence: int = 2,
    seed: int = 0,
) -> ResolutionComparison:
    """Train/test both classifiers on the same positional cohort splits."""
    cfg = cohort.config
    hits = hits or cfg.hits

    tumor_m = cohort.tumor_matrix(min_recurrence=min_recurrence)
    normal_m = cohort.normal_matrix(features=tumor_m)

    t_train, t_test = _split_columns(tumor_m.n_samples, train_fraction, seed)
    n_train, n_test = _split_columns(normal_m.n_samples, train_fraction, seed + 1)

    # -- mutation level -------------------------------------------------
    mut_train_t = MutationMatrix(
        tumor_m.values[:, t_train], tumor_m.features,
        tuple(tumor_m.sample_ids[i] for i in t_train),
    )
    mut_train_n = MutationMatrix(
        normal_m.values[:, n_train], normal_m.features,
        tuple(normal_m.sample_ids[i] for i in n_train),
    )
    mut_res = solve_mutation_level(
        mut_train_t, mut_train_n, hits=hits, max_iterations=max_iterations
    )
    mut_clf = MultiHitClassifier.from_result(mut_res.raw)
    mut_perf = sensitivity_specificity(
        mut_clf.predict(tumor_m.values[:, t_test]),
        mut_clf.predict(normal_m.values[:, n_test]),
        name="mutation-level",
    )

    # -- gene level (from all calls, not the filtered feature view) ------
    gene_dense, normal_dense, gene_names = cohort.gene_matrices()
    gene_res = MultiHitSolver(hits=hits, max_iterations=max_iterations).solve(
        gene_dense[:, t_train], normal_dense[:, n_train]
    )
    gene_clf = MultiHitClassifier.from_result(gene_res)
    gene_perf = sensitivity_specificity(
        gene_clf.predict(gene_dense[:, t_test]),
        gene_clf.predict(normal_dense[:, n_test]),
        name="gene-level",
    )
    return ResolutionComparison(gene_level=gene_perf, mutation_level=mut_perf)
