"""Fig. 1 — the Summit node abstraction.

Fig. 1 is architectural rather than empirical: each Summit node (2
Power9 CPUs + 6 V100 GPUs) is abstracted as one MPI process driving six
GPU devices, each serving a range of flattened threads.  This driver
regenerates the figure's content as the concrete assignment table for a
given configuration: node -> MPI rank -> local GPUs -> thread ranges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.node import SUMMIT_NODE, SummitNodeSpec
from repro.scheduling.equiarea import equiarea_schedule
from repro.scheduling.schedule import Schedule
from repro.scheduling.schemes import SCHEME_3X1, Scheme

__all__ = ["Fig1Result", "run", "report"]


@dataclass(frozen=True)
class Fig1Result:
    node: SummitNodeSpec
    n_nodes: int
    schedule: Schedule

    def rank_assignments(self) -> list[list[tuple[int, int]]]:
        """Per rank: the thread range of each of its local GPUs."""
        out = []
        for rank in range(self.n_nodes):
            gpus = []
            for local in range(self.node.n_gpus):
                part = rank * self.node.n_gpus + local
                if part < self.schedule.n_parts:
                    gpus.append(self.schedule.thread_range(part))
            out.append(gpus)
        return out


def run(g: int = 200, n_nodes: int = 3, scheme: "Scheme | None" = None) -> Fig1Result:
    scheme = scheme or SCHEME_3X1
    schedule = equiarea_schedule(scheme, g, n_nodes * SUMMIT_NODE.n_gpus)
    return Fig1Result(node=SUMMIT_NODE, n_nodes=n_nodes, schedule=schedule)


def report(result: Fig1Result) -> str:
    node = result.node
    lines = [
        "Fig 1: Summit node as a computational unit",
        f"  node: {node.n_cpus} Power9 CPUs + {node.n_gpus} V100 GPUs "
        f"({node.gpu_memory_bytes // 1024**3} GB each), "
        f"{node.cpu_memory_bytes // 1024**3} GB host memory",
        f"  abstraction: {node.mpi_processes} MPI process per node driving "
        f"all {node.n_gpus} GPUs",
    ]
    for rank, gpus in enumerate(result.rank_assignments()):
        lines.append(f"  rank {rank}:")
        for local, (lo, hi) in enumerate(gpus):
            lines.append(f"    gpu {local}: threads [{lo:>10d}, {hi:>10d})")
    return "\n".join(lines)
