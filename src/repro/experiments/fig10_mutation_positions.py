"""Fig. 10 — positional mutation distributions: IDH1 vs MUC6 in LGG.

Paper: in the top LGG 4-hit combination, IDH1 mutations concentrate at
amino acid 132 in tumors (400 of 532 samples; 0 of 329 normals) — a
driver hotspot — while MUC6 mutations scatter uniformly in tumors and
normals alike, the signature of a passenger gene.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.cancers import cancer
from repro.data.hotspots import LGG_PROFILES, positional_distribution

__all__ = ["Fig10Result", "run", "report"]


@dataclass(frozen=True)
class PositionalPanel:
    """One of the figure's four panels."""

    gene: str
    cohort: str  # "tumor" | "normal"
    counts: np.ndarray  # per amino-acid position
    n_samples: int

    @property
    def percent(self) -> np.ndarray:
        return 100.0 * self.counts / max(self.n_samples, 1)

    @property
    def peak_position(self) -> int:
        return int(np.argmax(self.counts)) + 1

    @property
    def peak_concentration(self) -> float:
        """Fraction of all mutations at the modal position."""
        total = self.counts.sum()
        return float(self.counts.max() / total) if total else 0.0


@dataclass(frozen=True)
class Fig10Result:
    panels: dict[tuple[str, str], PositionalPanel]

    def panel(self, gene: str, cohort: str) -> PositionalPanel:
        return self.panels[(gene, cohort)]


def run(seed: int = 0) -> Fig10Result:
    lgg = cancer("LGG")
    panels: dict[tuple[str, str], PositionalPanel] = {}
    for gene, profile in LGG_PROFILES.items():
        for cohort_name, is_tumor, n in (
            ("tumor", True, lgg.n_tumor),
            ("normal", False, lgg.n_normal),
        ):
            counts = positional_distribution(profile, n, tumor=is_tumor, seed=seed)
            panels[(gene, cohort_name)] = PositionalPanel(
                gene=gene, cohort=cohort_name, counts=counts, n_samples=n
            )
    return Fig10Result(panels=panels)


def report(result: Fig10Result) -> str:
    lines = ["Fig 10: positional mutation distributions in LGG"]
    for (gene, cohort_name), panel in sorted(result.panels.items()):
        total = int(panel.counts.sum())
        lines.append(
            f"  {gene:5s} {cohort_name:6s}: {total:4d} mutations in "
            f"{panel.n_samples} samples; peak at position {panel.peak_position} "
            f"({panel.peak_concentration * 100:.1f}% of mutations)"
        )
    idh1_t = result.panel("IDH1", "tumor")
    lines.append(
        f"  IDH1 tumor mutations at R132: {int(idh1_t.counts[131])} "
        f"(paper: 400 of 532 samples); normals at R132: "
        f"{int(result.panel('IDH1', 'normal').counts[131])} (paper: 0)"
    )
    muc6_t = result.panel("MUC6", "tumor")
    lines.append(
        f"  MUC6 tumor peak concentration {muc6_t.peak_concentration * 100:.1f}% "
        "(uniform scatter -> passenger-like)"
    )
    return "\n".join(lines)
