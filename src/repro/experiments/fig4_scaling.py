"""Fig. 4 — strong and weak scaling of the 3x1 scheme on BRCA.

Paper results: strong scaling 100 -> 1000 nodes, efficiency 80.96-97.96%
(average 90.14% over 200-1000, 84.18% at 1000); weak scaling 100 -> 500
nodes, 94.6% average, ~90% at 500.  Reproduced with the job model driven
by the real equi-area schedule at G = 19411.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perfmodel.runtime import JobModel
from repro.perfmodel.scaling import ScalingPoint, strong_scaling_sweep, weak_scaling_sweep
from repro.perfmodel.workloads import BRCA, WorkloadSpec
from repro.scheduling.schemes import SCHEME_3X1

__all__ = ["Fig4Result", "run", "report"]


@dataclass(frozen=True)
class Fig4Result:
    workload: WorkloadSpec
    strong: list[ScalingPoint]
    weak: list[ScalingPoint]

    @property
    def strong_avg_efficiency(self) -> float:
        """Average over the non-baseline node counts (paper: 90.14%)."""
        return float(np.mean([p.efficiency for p in self.strong[1:]]))

    @property
    def strong_at_max_nodes(self) -> float:
        return self.strong[-1].efficiency

    @property
    def weak_avg_efficiency(self) -> float:
        return float(np.mean([p.efficiency for p in self.weak[1:]]))


def run(
    workload: WorkloadSpec = BRCA,
    strong_nodes: "list[int] | None" = None,
    weak_nodes: "list[int] | None" = None,
) -> Fig4Result:
    model = JobModel(scheme=SCHEME_3X1)
    # Baseline is the smallest node count of each sweep (the paper uses
    # 100 nodes, the smallest runnable allocation, as its baseline).
    strong = strong_scaling_sweep(
        model,
        workload,
        strong_nodes,
        baseline_nodes=min(strong_nodes) if strong_nodes else 100,
    )
    weak = weak_scaling_sweep(
        model,
        workload,
        weak_nodes,
        baseline_nodes=min(weak_nodes) if weak_nodes else 100,
    )
    return Fig4Result(workload=workload, strong=strong, weak=weak)


def report(result: Fig4Result) -> str:
    lines = [f"Fig 4: scaling of the 3x1 scheme, {result.workload.name}"]
    lines.append("  (a) strong scaling (fixed workload):")
    lines.append("      nodes |  runtime (s) | efficiency")
    for p in result.strong:
        lines.append(f"      {p.n_nodes:5d} | {p.runtime_s:12.1f} | {p.efficiency:9.4f}")
    lines.append(
        f"      average efficiency (excl. baseline): "
        f"{result.strong_avg_efficiency:.4f} (paper 0.9014)"
    )
    lines.append(
        f"      efficiency at {result.strong[-1].n_nodes} nodes: "
        f"{result.strong_at_max_nodes:.4f} (paper 0.8418 at 1000)"
    )
    lines.append("  (b) weak scaling (fixed work per GPU, first iteration):")
    lines.append("      nodes |  runtime (s) | efficiency")
    for p in result.weak:
        lines.append(f"      {p.n_nodes:5d} | {p.runtime_s:12.1f} | {p.efficiency:9.4f}")
    lines.append(
        f"      average efficiency (excl. baseline): "
        f"{result.weak_avg_efficiency:.4f} (paper 0.946)"
    )
    return "\n".join(lines)
