"""Fig. 4 — strong and weak scaling of the 3x1 scheme on BRCA.

Paper results: strong scaling 100 -> 1000 nodes, efficiency 80.96-97.96%
(average 90.14% over 200-1000, 84.18% at 1000); weak scaling 100 -> 500
nodes, 94.6% average, ~90% at 500.  Reproduced with the job model driven
by the real equi-area schedule at G = 19411.

The elastic extra (``elastic_nodes=...``) repeats the strong sweep on
the lease-stealing runtime with a ±``churn_fraction`` mid-solve fleet
swap; its efficiencies are measured against the *static* 100-node
baseline, so the gap between the curves is the cost (or gain — fine
leases absorb node jitter) of elasticity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perfmodel.runtime import JobModel
from repro.perfmodel.scaling import (
    ScalingPoint,
    elastic_strong_scaling_sweep,
    strong_scaling_sweep,
    weak_scaling_sweep,
)
from repro.perfmodel.workloads import BRCA, WorkloadSpec
from repro.scheduling.schemes import SCHEME_3X1

__all__ = ["Fig4Result", "run", "report"]


@dataclass(frozen=True)
class Fig4Result:
    workload: WorkloadSpec
    strong: list[ScalingPoint]
    weak: list[ScalingPoint]
    elastic: "list[ScalingPoint] | None" = None

    @property
    def strong_avg_efficiency(self) -> float:
        """Average over the non-baseline node counts (paper: 90.14%)."""
        return float(np.mean([p.efficiency for p in self.strong[1:]]))

    @property
    def strong_at_max_nodes(self) -> float:
        return self.strong[-1].efficiency

    @property
    def weak_avg_efficiency(self) -> float:
        return float(np.mean([p.efficiency for p in self.weak[1:]]))

    @property
    def elastic_at_max_nodes(self) -> "float | None":
        """Churned-fleet efficiency at the largest allocation."""
        return self.elastic[-1].efficiency if self.elastic else None

    @property
    def elastic_overhead_at_max(self) -> "float | None":
        """Fractional runtime cost of churn vs the static fleet at the
        shared max node count (negative = elasticity was free or won)."""
        if not self.elastic:
            return None
        static = {p.n_nodes: p.runtime_s for p in self.strong}
        top = self.elastic[-1]
        if top.n_nodes not in static:
            return None
        return top.runtime_s / static[top.n_nodes] - 1.0


def run(
    workload: WorkloadSpec = BRCA,
    strong_nodes: "list[int] | None" = None,
    weak_nodes: "list[int] | None" = None,
    elastic_nodes: "list[int] | None" = None,
    churn_fraction: float = 0.2,
) -> Fig4Result:
    model = JobModel(scheme=SCHEME_3X1)
    # Baseline is the smallest node count of each sweep (the paper uses
    # 100 nodes, the smallest runnable allocation, as its baseline).
    strong = strong_scaling_sweep(
        model,
        workload,
        strong_nodes,
        baseline_nodes=min(strong_nodes) if strong_nodes else 100,
    )
    weak = weak_scaling_sweep(
        model,
        workload,
        weak_nodes,
        baseline_nodes=min(weak_nodes) if weak_nodes else 100,
    )
    elastic = None
    if elastic_nodes:
        elastic = elastic_strong_scaling_sweep(
            model,
            workload,
            elastic_nodes,
            baseline_nodes=min(min(elastic_nodes), strong[0].n_nodes),
            churn_fraction=churn_fraction,
        )
    return Fig4Result(workload=workload, strong=strong, weak=weak, elastic=elastic)


def report(result: Fig4Result) -> str:
    lines = [f"Fig 4: scaling of the 3x1 scheme, {result.workload.name}"]
    lines.append("  (a) strong scaling (fixed workload):")
    lines.append("      nodes |  runtime (s) | efficiency")
    for p in result.strong:
        lines.append(f"      {p.n_nodes:5d} | {p.runtime_s:12.1f} | {p.efficiency:9.4f}")
    lines.append(
        f"      average efficiency (excl. baseline): "
        f"{result.strong_avg_efficiency:.4f} (paper 0.9014)"
    )
    lines.append(
        f"      efficiency at {result.strong[-1].n_nodes} nodes: "
        f"{result.strong_at_max_nodes:.4f} (paper 0.8418 at 1000)"
    )
    lines.append("  (b) weak scaling (fixed work per GPU, first iteration):")
    lines.append("      nodes |  runtime (s) | efficiency")
    for p in result.weak:
        lines.append(f"      {p.n_nodes:5d} | {p.runtime_s:12.1f} | {p.efficiency:9.4f}")
    lines.append(
        f"      average efficiency (excl. baseline): "
        f"{result.weak_avg_efficiency:.4f} (paper 0.946)"
    )
    if result.elastic:
        lines.append(
            "  (c) elastic strong scaling (lease stealing, ±20% mid-solve churn):"
        )
        lines.append("      nodes |  runtime (s) | efficiency (vs static baseline)")
        for p in result.elastic:
            lines.append(
                f"      {p.n_nodes:5d} | {p.runtime_s:12.1f} | {p.efficiency:9.4f}"
            )
        overhead = result.elastic_overhead_at_max
        if overhead is not None:
            lines.append(
                f"      churn overhead at {result.elastic[-1].n_nodes} nodes "
                f"vs static: {overhead:+.2%}"
            )
    return "\n".join(lines)
