"""§V extension — mutation-level search and its cost arithmetic.

Not a paper figure: this regenerates the *Discussion* section's claims.

* moving the 4-hit search to ~4e5 mutation features costs ~1e5x more
  than the optimized gene-level run (``C(4e5,4)/C(2e4,4) = 1.6e5``);
* each extra hit costs a further ~1e5x (``C(M,5)/C(M,4) ~ 8e4``);
* at mutation resolution the search isolates hotspot *positions*
  (IDH1:132-style) that gene resolution cannot separate from same-gene
  passenger scatter — demonstrated on a planted positional cohort.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mutlevel.discrimination import DiscriminationReport, compare_resolutions
from repro.mutlevel.projection import (
    extra_hit_factor,
    mutation_level_factor,
    project_full_summit,
)
from repro.mutlevel.synthesis import PositionalCohortConfig, generate_positional_cohort

__all__ = ["MutationLevelExperiment", "run", "report"]


@dataclass(frozen=True)
class MutationLevelExperiment:
    discrimination: DiscriminationReport
    mutation_factor: float
    extra_hit: float
    full_summit_days: float


def run(
    n_genes: int = 30,
    n_tumor: int = 150,
    n_normal: int = 150,
    seed: int = 4,
    gene_level_single_gpu_s: float = 5.4e6,  # ~62 days, our 4-hit estimate
) -> MutationLevelExperiment:
    cohort = generate_positional_cohort(
        PositionalCohortConfig(
            n_genes=n_genes,
            n_tumor=n_tumor,
            n_normal=n_normal,
            hits=3,
            n_driver_combos=2,
            background_rate=0.10,
            seed=seed,
        )
    )
    report_ = compare_resolutions(cohort)
    projection = project_full_summit(gene_level_single_gpu_s, hits=4)
    return MutationLevelExperiment(
        discrimination=report_,
        mutation_factor=mutation_level_factor(),
        extra_hit=extra_hit_factor(4),
        full_summit_days=projection.projected_days,
    )


def report(result: MutationLevelExperiment) -> str:
    d = result.discrimination
    lines = [
        "Mutation-level extension (paper Section V)",
        f"  search-space growth gene->mutation (4-hit): "
        f"{result.mutation_factor:.2e} (paper: ~1e5)",
        f"  growth per extra hit at mutation level: "
        f"{result.extra_hit:.2e} (paper: ~4e5 per hit)",
        f"  projected 4-hit mutation-level run on all 27648 Summit GPUs: "
        f"{result.full_summit_days:.0f} days at 80% efficiency",
        "  driver-position discrimination on a planted positional cohort:",
        f"    gene-level driver precision:      {d.gene_driver_precision:.2f}",
        f"    mutation-level hotspot precision: {d.mutation_hotspot_precision:.2f}",
        f"    hotspot features recovered: {d.hotspot_features_found}/{d.planted_hotspots}",
        f"    first mutation-level combos: {d.mutation_level_combos[:2]}",
    ]
    return "\n".join(lines)
