"""Fig. 5 — effect of the three memory optimizations on runtime.

Paper: MemOpt1 (prefetch gene-i rows) + MemOpt2 (prefetch gene-j rows) +
BitSplicing together give a ~3x speedup for the 3-hit algorithm on BRCA
on a single GPU.

Two reproductions:

* **model** — the single-V100 runtime estimate at paper scale
  (G = 19411) for each cumulative configuration;
* **measured** — the real vectorized engine at reduced scale, reporting
  the *exact global word-read counts* of each configuration (the
  quantity prefetching reduces; NumPy cannot express register prefetch,
  so wall time is only reported for the BitSplicing comparison, which
  does change the executed work).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.memopt import MemoryConfig
from repro.core.solver import MultiHitSolver
from repro.data.synthesis import CohortConfig, generate_cohort
from repro.perfmodel.runtime import JobModel
from repro.perfmodel.workloads import BRCA, WorkloadSpec
from repro.scheduling.schemes import SCHEME_2X1

__all__ = ["Fig5Result", "run", "report", "CONFIGS"]

CONFIGS: list[tuple[str, MemoryConfig]] = [
    ("baseline", MemoryConfig(False, False, False)),
    ("+MemOpt1", MemoryConfig(True, False, False)),
    ("+MemOpt1+MemOpt2", MemoryConfig(True, True, False)),
    ("+MemOpt1+MemOpt2+BitSplicing", MemoryConfig(True, True, True)),
]


@dataclass(frozen=True)
class Fig5Result:
    labels: list[str]
    model_seconds: list[float]
    measured_word_reads: list[int]
    measured_wall_s: list[float]

    @property
    def model_speedups(self) -> list[float]:
        return [self.model_seconds[0] / t for t in self.model_seconds]

    @property
    def combined_model_speedup(self) -> float:
        return self.model_seconds[0] / self.model_seconds[-1]

    @property
    def read_reductions(self) -> list[float]:
        return [self.measured_word_reads[0] / max(r, 1) for r in self.measured_word_reads]


def run(
    workload: WorkloadSpec = BRCA,
    reduced_genes: int = 40,
    seed: int = 7,
) -> Fig5Result:
    labels, model_s = [], []
    for label, mem in CONFIGS:
        labels.append(label)
        model_s.append(
            JobModel(scheme=SCHEME_2X1, memory=mem).single_gpu_seconds(workload)
        )

    cohort = generate_cohort(
        CohortConfig(
            n_genes=reduced_genes, n_tumor=120, n_normal=120, hits=3,
            n_driver_combos=3, seed=seed,
        )
    )
    reads, walls = [], []
    for _, mem in CONFIGS:
        # The ablation compares the *model* traffic of the prefetch
        # configurations; the sparse path meters actual traffic (which
        # is prefetch-independent), so it is pinned off here.
        solver = MultiHitSolver(
            hits=3, backend="single", memory=mem, sparse=False
        )
        t0 = time.perf_counter()
        result = solver.solve(cohort.tumor.values, cohort.normal.values)
        walls.append(time.perf_counter() - t0)
        reads.append(result.counters.word_reads)
    return Fig5Result(
        labels=labels,
        model_seconds=model_s,
        measured_word_reads=reads,
        measured_wall_s=walls,
    )


def report(result: Fig5Result) -> str:
    lines = ["Fig 5: memory optimizations (3-hit, single GPU)"]
    lines.append("  model (paper scale, G=19411):")
    lines.append("      configuration                  | seconds | speedup")
    for label, sec, sp in zip(result.labels, result.model_seconds, result.model_speedups):
        lines.append(f"      {label:30s} | {sec:7.0f} | {sp:6.2f}x")
    lines.append(
        f"      combined speedup: {result.combined_model_speedup:.2f}x (paper ~3x)"
    )
    lines.append("  measured (reduced scale): global word reads per full solve")
    for label, r, red, w in zip(
        result.labels, result.measured_word_reads, result.read_reductions, result.measured_wall_s
    ):
        lines.append(
            f"      {label:30s} | {r:12d} reads | {red:5.2f}x fewer | wall {w:6.3f}s"
        )
    return "\n".join(lines)
