"""Fig. 2 — per-thread workload under triangular (2x2) vs tetrahedral (3x1) mapping.

For G = 10 (the paper's illustration), the 2x2 scheme's C(G,2) = 45
threads carry workloads from C(8,2) = 28 down to 0, while the 3x1
scheme's C(G,3) = 120 threads carry workloads from G-3 = 7 down to 0 —
the tetrahedral mapping spreads the same total work over more threads
with a G-fold smaller worst-to-best spread.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scheduling.schemes import SCHEME_2X2, SCHEME_3X1
from repro.scheduling.workload import thread_work_array, total_threads, total_work

__all__ = ["Fig2Result", "run", "report"]


@dataclass(frozen=True)
class Fig2Result:
    g: int
    work_2x2: np.ndarray
    work_3x1: np.ndarray

    @property
    def spread_2x2(self) -> float:
        return float(self.work_2x2.max() - self.work_2x2.min())

    @property
    def spread_3x1(self) -> float:
        return float(self.work_3x1.max() - self.work_3x1.min())


def run(g: int = 10) -> Fig2Result:
    w2 = thread_work_array(
        SCHEME_2X2, g, np.arange(total_threads(SCHEME_2X2, g), dtype=np.uint64)
    )
    w3 = thread_work_array(
        SCHEME_3X1, g, np.arange(total_threads(SCHEME_3X1, g), dtype=np.uint64)
    )
    assert w2.sum() == w3.sum() == total_work(SCHEME_2X2, g)
    return Fig2Result(g=g, work_2x2=w2, work_3x1=w3)


def report(result: Fig2Result) -> str:
    lines = [
        f"Fig 2: thread workload distribution, G={result.g}",
        f"  2x2 scheme: {len(result.work_2x2)} threads, "
        f"workload {result.work_2x2.max():.0f} .. {result.work_2x2.min():.0f} "
        f"(spread {result.spread_2x2:.0f})",
        f"  3x1 scheme: {len(result.work_3x1)} threads, "
        f"workload {result.work_3x1.max():.0f} .. {result.work_3x1.min():.0f} "
        f"(spread {result.spread_3x1:.0f})",
        "  thread workloads (2x2): " + " ".join(f"{w:.0f}" for w in result.work_2x2),
        "  thread workloads (3x1): " + " ".join(f"{w:.0f}" for w in result.work_3x1),
    ]
    return "\n".join(lines)
