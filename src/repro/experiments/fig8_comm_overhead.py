"""Fig. 8 — computation vs communication time across MPI processes.

Paper: for a 1000-node run, per-rank message-passing overhead is hidden
under the largest computation time — the reduce/broadcast wire time is
microseconds while the per-rank compute skew (straggler wait, which shows
up as communication/idle time) is seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perfmodel.runtime import JobModel, JobResult
from repro.perfmodel.workloads import BRCA, WorkloadSpec
from repro.scheduling.schemes import SCHEME_3X1

__all__ = ["Fig8Result", "run", "report"]


@dataclass(frozen=True)
class Fig8Result:
    workload: WorkloadSpec
    n_nodes: int
    job: JobResult

    @property
    def compute_s(self) -> np.ndarray:
        return self.job.rank_compute_s

    @property
    def comm_s(self) -> np.ndarray:
        return self.job.rank_comm_s

    @property
    def comm_fraction(self) -> float:
        total = self.compute_s + self.comm_s
        return float(self.comm_s.sum() / total.sum())

    @property
    def comm_hidden(self) -> bool:
        """Communication never exceeds the largest rank compute time."""
        return float(self.comm_s.max()) <= float(self.compute_s.max())


def run(workload: WorkloadSpec = BRCA, n_nodes: int = 1000) -> Fig8Result:
    job = JobModel(scheme=SCHEME_3X1).run(workload, n_nodes, trace=True)
    return Fig8Result(workload=workload, n_nodes=n_nodes, job=job)


def report(result: Fig8Result) -> str:
    comp, comm = result.compute_s, result.comm_s
    idxs = np.linspace(0, result.n_nodes - 1, 11).astype(int)
    lines = [
        f"Fig 8: compute/comm split, {result.workload.name}, {result.n_nodes} nodes",
        "  rank | compute (s) | comm+wait (s)",
    ]
    for i in idxs:
        lines.append(f"  {i:4d} | {comp[i]:11.1f} | {comm[i]:13.2f}")
    lines.append(
        f"  mean compute {comp.mean():.1f}s, mean comm+wait {comm.mean():.2f}s "
        f"({result.comm_fraction * 100:.2f}% of total)"
    )
    lines.append(
        "  communication hidden by largest computation time: "
        f"{result.comm_hidden} (paper: yes)"
    )
    trace = result.job.trace
    if trace is not None and trace.n_iterations:
        crit = trace.critical_rank(0)
        lines.append(
            f"  critical path (iteration 1): rank {crit} computes last; "
            f"other ranks wait {trace.wait_time(0):.1f} rank-seconds in the reduce"
        )
    return "\n".join(lines)
