"""Section III-C — cost of computing the equi-area schedule.

Paper: the naive per-thread prefix scan takes tens of hours and runs out
of memory at ``C(G, 3)`` scale; the O(G) level walk computes the same
schedule in under a minute.  Here both are timed at growing G (the naive
scan only where it is feasible), their boundaries are asserted identical,
and the paper-scale level-walk time is measured directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.scheduling.equiarea import equiarea_schedule, equiarea_schedule_naive
from repro.scheduling.schemes import SCHEME_3X1
from repro.scheduling.workload import total_threads

__all__ = ["SchedulerCostResult", "run", "report"]


@dataclass(frozen=True)
class SchedulerCostRow:
    g: int
    n_threads: int
    naive_s: "float | None"
    level_walk_s: float
    identical: "bool | None"


@dataclass(frozen=True)
class SchedulerCostResult:
    rows: list[SchedulerCostRow]
    paper_scale_g: int
    paper_scale_s: float


def run(
    gene_counts: "list[int] | None" = None,
    n_parts: int = 60,
    naive_limit_threads: int = 3_000_000,
    paper_scale_g: int = 19411,
    paper_scale_parts: int = 6000,
) -> SchedulerCostResult:
    gene_counts = gene_counts or [50, 100, 200, 400, 800]
    rows = []
    for g in gene_counts:
        t0 = time.perf_counter()
        fast = equiarea_schedule(SCHEME_3X1, g, n_parts)
        fast_s = time.perf_counter() - t0
        threads = total_threads(SCHEME_3X1, g)
        naive_s = None
        identical = None
        if threads <= naive_limit_threads:
            t0 = time.perf_counter()
            naive = equiarea_schedule_naive(SCHEME_3X1, g, n_parts)
            naive_s = time.perf_counter() - t0
            identical = naive.boundaries == fast.boundaries
        rows.append(
            SchedulerCostRow(
                g=g,
                n_threads=threads,
                naive_s=naive_s,
                level_walk_s=fast_s,
                identical=identical,
            )
        )
    t0 = time.perf_counter()
    equiarea_schedule(SCHEME_3X1, paper_scale_g, paper_scale_parts)
    paper_s = time.perf_counter() - t0
    return SchedulerCostResult(
        rows=rows, paper_scale_g=paper_scale_g, paper_scale_s=paper_s
    )


def report(result: SchedulerCostResult) -> str:
    lines = [
        "Equi-area scheduler cost: naive prefix scan vs O(G) level walk",
        "      G |      threads |   naive (s) | level walk (s) | identical",
    ]
    for r in result.rows:
        naive = f"{r.naive_s:11.4f}" if r.naive_s is not None else "   (skipped)"
        ident = "-" if r.identical is None else str(r.identical)
        lines.append(
            f"  {r.g:5d} | {r.n_threads:12d} | {naive} | {r.level_walk_s:14.4f} | {ident}"
        )
    lines.append(
        f"  paper scale (G={result.paper_scale_g}, 6000 GPUs): "
        f"{result.paper_scale_s:.3f} s (paper: < 1 minute; naive: tens of hours)"
    )
    return "\n".join(lines)
