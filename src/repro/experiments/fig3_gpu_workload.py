"""Fig. 3 — per-GPU workload under equi-distance vs equi-area scheduling.

The paper's illustration: G = 50, 5 nodes (30 GPUs), 3x1 scheme.  ED cuts
the thread range into equal-count pieces, so the area under the workload
curve (= combinations per GPU) varies wildly; EA cuts by area, flattening
the per-GPU workload bars of panel (c).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scheduling.equiarea import equiarea_schedule
from repro.scheduling.equidistance import equidistance_schedule
from repro.scheduling.schemes import SCHEME_3X1, Scheme
from repro.scheduling.workload import thread_work_array, total_threads

__all__ = ["Fig3Result", "run", "report"]


@dataclass(frozen=True)
class Fig3Result:
    g: int
    n_gpus: int
    thread_work: np.ndarray
    ed_boundaries: tuple[int, ...]
    ea_boundaries: tuple[int, ...]
    ed_gpu_work: np.ndarray
    ea_gpu_work: np.ndarray

    @property
    def ed_imbalance(self) -> float:
        return float(self.ed_gpu_work.max() / self.ed_gpu_work.mean())

    @property
    def ea_imbalance(self) -> float:
        return float(self.ea_gpu_work.max() / self.ea_gpu_work.mean())


def run(g: int = 50, n_nodes: int = 5, gpus_per_node: int = 6, scheme: "Scheme | None" = None) -> Fig3Result:
    scheme = scheme or SCHEME_3X1
    n_gpus = n_nodes * gpus_per_node
    ed = equidistance_schedule(scheme, g, n_gpus)
    ea = equiarea_schedule(scheme, g, n_gpus)
    work = thread_work_array(
        scheme, g, np.arange(total_threads(scheme, g), dtype=np.uint64)
    )
    return Fig3Result(
        g=g,
        n_gpus=n_gpus,
        thread_work=work,
        ed_boundaries=ed.boundaries,
        ea_boundaries=ea.boundaries,
        ed_gpu_work=np.asarray(ed.work_per_part(), dtype=np.float64),
        ea_gpu_work=np.asarray(ea.work_per_part(), dtype=np.float64),
    )


def report(result: Fig3Result) -> str:
    lines = [
        f"Fig 3: per-GPU workload, G={result.g}, {result.n_gpus} GPUs",
        f"  (a) thread workload curve: {len(result.thread_work)} threads, "
        f"max {result.thread_work.max():.0f}",
        f"  (b) EA cut points: {list(result.ea_boundaries)}",
        f"      ED cut points: {list(result.ed_boundaries)}",
        "  (c) per-GPU work:",
        "      gpu |          ED |          EA",
    ]
    for p in range(result.n_gpus):
        lines.append(
            f"      {p:3d} | {result.ed_gpu_work[p]:11.0f} | {result.ea_gpu_work[p]:11.0f}"
        )
    lines.append(
        f"  imbalance (max/mean): ED={result.ed_imbalance:.2f}  EA={result.ea_imbalance:.2f}"
    )
    return "\n".join(lines)
