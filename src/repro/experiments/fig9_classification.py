"""Fig. 9 — classification performance of the identified 4-hit combinations.

Paper: 151 4-hit combinations found across the 11 cancer types estimated
to need >= 4 hits; per-cancer classifiers built from the training-set
combinations achieve 83% average sensitivity (CI 72-90%) and 90% average
specificity (CI 81-96%) on the held-out 25% test split.

Here the 11 cohorts are synthesized with planted combinations (gene
count reduced so the exhaustive 4-hit search runs on a laptop; sample
counts follow the catalog), solved with the real engine, and scored with
the real classifier on a real train/test split.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.classifier import MultiHitClassifier
from repro.analysis.metrics import ClassifierPerformance, sensitivity_specificity
from repro.core.solver import MultiHitSolver
from repro.data.cancers import four_hit_cancers
from repro.data.split import train_test_split
from repro.data.synthesis import generate_cohort

__all__ = ["Fig9Result", "run", "report"]


@dataclass(frozen=True)
class Fig9Result:
    performances: list[ClassifierPerformance]
    combos_per_cancer: dict[str, int]
    planted_recovered: dict[str, int]

    @property
    def total_combinations(self) -> int:
        return sum(self.combos_per_cancer.values())

    @property
    def mean_sensitivity(self) -> float:
        return float(np.mean([p.sensitivity for p in self.performances]))

    @property
    def mean_specificity(self) -> float:
        return float(np.mean([p.specificity for p in self.performances]))


def run(
    hits: int = 4,
    reduced_genes: int = 48,
    n_driver_combos: int = 4,
    seed: int = 2021,
    max_iterations: int = 14,
    background_scale: float = 0.85,
    sporadic_fraction: float = 0.10,
) -> Fig9Result:
    performances: list[ClassifierPerformance] = []
    combos: dict[str, int] = {}
    recovered: dict[str, int] = {}
    for offset, cancer in enumerate(four_hit_cancers()):
        cohort = generate_cohort(
            cancer=cancer,
            n_genes=reduced_genes,
            hits=hits,
            n_driver_combos=n_driver_combos,
            seed=seed + offset,
            background_scale=background_scale,
            sporadic_fraction=sporadic_fraction,
        )
        train_t, test_t = train_test_split(cohort.tumor, seed=seed + offset)
        train_n, test_n = train_test_split(cohort.normal, seed=seed + offset + 500)
        solver = MultiHitSolver(
            hits=hits, backend="single", max_iterations=max_iterations
        )
        result = solver.solve(train_t.values, train_n.values)
        clf = MultiHitClassifier.from_result(result)
        performances.append(
            sensitivity_specificity(
                clf.predict(test_t), clf.predict(test_n), name=cancer.abbrev
            )
        )
        combos[cancer.abbrev] = len(result.combinations)
        found = set(result.gene_sets())
        recovered[cancer.abbrev] = sum(1 for p in cohort.planted if p in found)
    return Fig9Result(
        performances=performances,
        combos_per_cancer=combos,
        planted_recovered=recovered,
    )


def report(result: Fig9Result) -> str:
    lines = [
        "Fig 9: per-cancer 4-hit classifier performance "
        "(75% train / 25% test, synthetic planted cohorts)"
    ]
    for p in result.performances:
        abbrev = p.name
        lines.append(
            f"  {p.describe()}  combos={result.combos_per_cancer[abbrev]} "
            f"planted-recovered={result.planted_recovered[abbrev]}"
        )
    lines.append(
        f"  total combinations: {result.total_combinations} (paper: 151)"
    )
    lines.append(
        f"  average sensitivity {result.mean_sensitivity:.2f} (paper 0.83), "
        f"specificity {result.mean_specificity:.2f} (paper 0.90)"
    )
    return "\n".join(lines)
