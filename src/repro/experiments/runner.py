"""Run every registered experiment and collate one report.

``run_all`` executes each experiment driver (optionally a subset) and
returns the composed report text — the programmatic equivalent of
``pytest benchmarks/ --benchmark-only -s``, usable from the CLI
(``multihit experiment all``) to regenerate the paper's evaluation as a
single document.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


__all__ = ["ExperimentOutcome", "run_all", "compose_report"]


@dataclass(frozen=True)
class ExperimentOutcome:
    """One experiment's report (or failure)."""

    name: str
    report: "str | None"
    error: "str | None"
    seconds: float

    @property
    def ok(self) -> bool:
        return self.error is None


def run_all(
    names: "list[str] | None" = None,
    skip: "set[str] | None" = None,
) -> list[ExperimentOutcome]:
    """Run experiments by registry name; failures are captured, not raised."""
    from repro.experiments import EXPERIMENTS

    selected = names or list(EXPERIMENTS)
    skip = skip or set()
    outcomes = []
    for name in selected:
        if name in skip:
            continue
        if name not in EXPERIMENTS:
            outcomes.append(
                ExperimentOutcome(name=name, report=None, error="unknown experiment", seconds=0.0)
            )
            continue
        mod = EXPERIMENTS[name]
        t0 = time.perf_counter()
        try:
            report = mod.report(mod.run())
            outcomes.append(
                ExperimentOutcome(
                    name=name, report=report, error=None,
                    seconds=time.perf_counter() - t0,
                )
            )
        except Exception as exc:  # noqa: BLE001 - collated for the caller
            outcomes.append(
                ExperimentOutcome(
                    name=name, report=None, error=f"{type(exc).__name__}: {exc}",
                    seconds=time.perf_counter() - t0,
                )
            )
    return outcomes


def compose_report(outcomes: list[ExperimentOutcome]) -> str:
    """Single document with every experiment's series/rows."""
    lines = ["# Reproduction run: all experiments", ""]
    ok = sum(1 for o in outcomes if o.ok)
    lines.append(f"{ok}/{len(outcomes)} experiments succeeded.")
    for o in outcomes:
        lines.append("")
        lines.append(f"## {o.name}  ({o.seconds:.1f}s)")
        lines.append("")
        if o.ok:
            lines.append("```")
            lines.append(o.report)
            lines.append("```")
        else:
            lines.append(f"FAILED: {o.error}")
    return "\n".join(lines)
