"""Section IV-B — equi-distance vs equi-area scheduler runtimes.

Paper: for the 4-hit 2x2 scheme on BRCA with 100 nodes, ED took 13943 s
and EA 4607 s — a ~3x speedup from balancing the workload.

Reproduced two ways: the job model at paper scale, and a reduced-scale
*functional* check that both schedules find the identical combination
while their per-GPU workloads differ by the predicted imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.distributed import DistributedEngine
from repro.core.fscore import FScoreParams
from repro.data.synthesis import CohortConfig, generate_cohort
from repro.perfmodel.runtime import JobModel
from repro.perfmodel.workloads import BRCA, WorkloadSpec
from repro.scheduling.schemes import SCHEME_2X2

__all__ = ["EdVsEaResult", "run", "report"]


@dataclass(frozen=True)
class EdVsEaResult:
    workload: WorkloadSpec
    n_nodes: int
    ed_seconds: float
    ea_seconds: float
    ed_imbalance: float
    ea_imbalance: float
    same_winner: bool

    @property
    def speedup(self) -> float:
        return self.ed_seconds / self.ea_seconds


def run(
    workload: WorkloadSpec = BRCA,
    n_nodes: int = 100,
    reduced_genes: int = 30,
    seed: int = 3,
) -> EdVsEaResult:
    ed_model = JobModel(scheme=SCHEME_2X2, scheduler="equidistance")
    ea_model = JobModel(scheme=SCHEME_2X2, scheduler="equiarea")
    ed_s = ed_model.run(workload, n_nodes).total_s
    ea_s = ea_model.run(workload, n_nodes).total_s
    ed_imb = ed_model.build_schedule(workload.g, n_nodes).imbalance()
    ea_imb = ea_model.build_schedule(workload.g, n_nodes).imbalance()

    # Functional equivalence at reduced scale: both schedulers must find
    # the identical best combination.
    cohort = generate_cohort(
        CohortConfig(n_genes=reduced_genes, n_tumor=90, n_normal=90, hits=4, seed=seed)
    )
    tumor = cohort.tumor.to_bitmatrix()
    normal = cohort.normal.to_bitmatrix()
    params = FScoreParams(n_tumor=tumor.n_samples, n_normal=normal.n_samples)
    winners = []
    for policy in ("equidistance", "equiarea"):
        eng = DistributedEngine(
            scheme=SCHEME_2X2, n_nodes=4, gpus_per_node=3, scheduler=policy
        )
        winners.append(eng.best_combo(tumor, normal, params))
    same = (
        winners[0] is not None
        and winners[1] is not None
        and winners[0].genes == winners[1].genes
        and winners[0].f == winners[1].f
    )
    return EdVsEaResult(
        workload=workload,
        n_nodes=n_nodes,
        ed_seconds=ed_s,
        ea_seconds=ea_s,
        ed_imbalance=ed_imb,
        ea_imbalance=ea_imb,
        same_winner=same,
    )


def report(result: EdVsEaResult) -> str:
    return "\n".join(
        [
            f"ED vs EA scheduling (2x2 scheme, {result.workload.name}, "
            f"{result.n_nodes} nodes)",
            f"  equi-distance: {result.ed_seconds:9.0f} s (paper 13943 s), "
            f"work imbalance {result.ed_imbalance:.2f}x",
            f"  equi-area:     {result.ea_seconds:9.0f} s (paper  4607 s), "
            f"work imbalance {result.ea_imbalance:.2f}x",
            f"  speedup: {result.speedup:.2f}x (paper 3.03x)",
            f"  functional check (reduced scale): both schedulers find the "
            f"identical winner: {result.same_winner}",
        ]
    )
