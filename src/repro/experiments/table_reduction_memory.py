"""Section III-E — candidate-list memory accounting for the reduction.

Paper: at BRCA scale (G = 19411) the naive per-thread candidate list
holds ~1.22e12 twenty-byte entries (~24.34 TB); block-level reduction
(block size 512) shrinks it to ~47.5 GB, fitting node memory; each MPI
rank then returns a single 20-byte record to root.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.reduction import DEFAULT_BLOCK_SIZE, reduction_plan
from repro.perfmodel.workloads import BRCA, WorkloadSpec
from repro.scheduling.schemes import SCHEME_3X1

__all__ = ["ReductionMemoryResult", "run", "report"]

# Decimal units, as used by the paper (1.22e12 entries x 20 B = 24.34 TB).
_TB = 1e12
_GB = 1e9


@dataclass(frozen=True)
class ReductionMemoryResult:
    workload: WorkloadSpec
    plan: dict

    @property
    def naive_tb(self) -> float:
        return self.plan["naive_list_bytes"] / _TB

    @property
    def block_gb(self) -> float:
        return self.plan["block_list_bytes"] / _GB


def run(workload: WorkloadSpec = BRCA, n_gpus: int = 6000) -> ReductionMemoryResult:
    plan = reduction_plan(
        SCHEME_3X1, workload.g, block_size=DEFAULT_BLOCK_SIZE, n_gpus=n_gpus
    )
    return ReductionMemoryResult(workload=workload, plan=plan)


def report(result: ReductionMemoryResult) -> str:
    p = result.plan
    return "\n".join(
        [
            f"Reduction memory accounting ({result.workload.name}, "
            f"G={result.workload.g}, 3x1 scheme)",
            f"  per-thread candidate list: {p['threads']:.3e} entries = "
            f"{result.naive_tb:.2f} TB (paper: 1.22e12 entries, 24.34 TB)",
            f"  after block reduction (512): {p['blocks']:.3e} entries = "
            f"{result.block_gb:.1f} GB (paper: 47.5 GB)",
            f"  per-rank traffic to root: {p['per_rank_bytes_to_root']} bytes "
            "(paper: 20 bytes)",
        ]
    )
