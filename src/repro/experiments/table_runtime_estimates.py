"""Section I — single-processor runtime estimates and the scale-out speedup.

Paper anchors: 3-hit BRCA took 13860 minutes on one CPU and 23 minutes on
one V100; 4-hit is estimated at over 500 years on one CPU and over 40
days on one GPU; the 1000-node (6000 GPU) run yields an estimated
7192-fold speedup over a single GPU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.runtime import JobModel
from repro.perfmodel.workloads import BRCA, WorkloadSpec
from repro.scheduling.schemes import SCHEME_2X1, SCHEME_3X1

__all__ = ["RuntimeEstimates", "run", "report"]


@dataclass(frozen=True)
class RuntimeEstimates:
    workload: WorkloadSpec
    cpu_3hit_min: float
    gpu_3hit_min: float
    cpu_4hit_years: float
    gpu_4hit_days: float
    cluster_4hit_s: float
    gpu_4hit_s: float

    @property
    def cluster_speedup(self) -> float:
        """6000-GPU speedup over one GPU (paper: 7192x)."""
        return self.gpu_4hit_s / self.cluster_4hit_s


def run(workload: WorkloadSpec = BRCA, n_nodes: int = 1000) -> RuntimeEstimates:
    m3 = JobModel(scheme=SCHEME_2X1)
    m4 = JobModel(scheme=SCHEME_3X1)
    gpu4 = m4.single_gpu_seconds(workload)
    cluster = m4.run(workload, n_nodes).total_s
    return RuntimeEstimates(
        workload=workload,
        cpu_3hit_min=m3.single_cpu_seconds(workload) / 60.0,
        gpu_3hit_min=m3.single_gpu_seconds(workload) / 60.0,
        cpu_4hit_years=m4.single_cpu_seconds(workload) / (86400.0 * 365.0),
        gpu_4hit_days=gpu4 / 86400.0,
        cluster_4hit_s=cluster,
        gpu_4hit_s=gpu4,
    )


def report(result: RuntimeEstimates) -> str:
    return "\n".join(
        [
            f"Runtime estimates ({result.workload.name})",
            f"  3-hit, 1 CPU core: {result.cpu_3hit_min:9.0f} min (paper 13860 min)",
            f"  3-hit, 1 V100:     {result.gpu_3hit_min:9.1f} min (paper    23 min)",
            f"  4-hit, 1 CPU core: {result.cpu_4hit_years:9.0f} years (paper >500 years)",
            f"  4-hit, 1 V100:     {result.gpu_4hit_days:9.1f} days (paper  >40 days)",
            f"  4-hit, 1000 nodes (6000 GPUs): {result.cluster_4hit_s:.0f} s "
            f"-> speedup {result.cluster_speedup:.0f}x over one GPU (paper 7192x)",
        ]
    )
