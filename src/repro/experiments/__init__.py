"""Experiment drivers: one module per paper table / figure.

Every module exposes ``run(**params)`` returning a result dataclass and a
``report(result) -> str`` that prints the same rows/series the paper
plots.  The benchmark harness under ``benchmarks/`` and the CLI both call
these; EXPERIMENTS.md records paper-vs-measured for each.
"""

from repro.experiments import (
    ext_full_summit,
    ext_memory_distribution,
    fig1_node_abstraction,
    ext_mutation_level,
    ext_scheduler_ablation,
    fig2_thread_workload,
    fig3_gpu_workload,
    fig4_scaling,
    fig5_memopts,
    fig6_utilization_2x2,
    fig7_utilization_3x1,
    fig8_comm_overhead,
    fig9_classification,
    fig10_mutation_positions,
    table_ed_vs_ea,
    table_reduction_memory,
    table_runtime_estimates,
    table_scheduler_cost,
)

EXPERIMENTS = {
    "fig1": fig1_node_abstraction,
    "fig2": fig2_thread_workload,
    "fig3": fig3_gpu_workload,
    "fig4": fig4_scaling,
    "fig5": fig5_memopts,
    "fig6": fig6_utilization_2x2,
    "fig7": fig7_utilization_3x1,
    "fig8": fig8_comm_overhead,
    "fig9": fig9_classification,
    "fig10": fig10_mutation_positions,
    "ed-vs-ea": table_ed_vs_ea,
    "reduction-memory": table_reduction_memory,
    "runtime-estimates": table_runtime_estimates,
    "scheduler-cost": table_scheduler_cost,
    "ext-mutation-level": ext_mutation_level,
    "ext-scheduler-ablation": ext_scheduler_ablation,
    "ext-memory-distribution": ext_memory_distribution,
    "ext-full-summit": ext_full_summit,
}

__all__ = ["EXPERIMENTS"]
