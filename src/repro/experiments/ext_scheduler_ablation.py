"""§V extension — latency-aware scheduling ablation.

Strategy (4) of the Discussion: incorporate memory latency into the
scheduler.  The Fig. 6 stragglers are an *occupancy* problem: the
low-lambda 2x2 partitions hold few, heavy threads, and a GPU with too
few threads cannot hide memory latency — so resizing the partition
cannot fix it (less work also means fewer threads).  This ablation
compares three remedies at full 600-GPU scale:

* **equi-area** — the paper's combination-balanced baseline;
* **latency-aware rebalancing** — iterative re-cutting against the
  device timing model (confirms resizing alone recovers ~nothing);
* **interleaved (block-cyclic)** — every GPU gets the same mixture of
  heavy and light threads, restoring occupancy uniformly — and, for
  reference, the paper's own remedy, the 3x1 scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.memopt import MemoryConfig
from repro.perfmodel.runtime import gpu_busy_times, interleaved_gpu_busy_times
from repro.perfmodel.workloads import ACC, WorkloadSpec
from repro.scheduling.costaware import latency_aware_schedule
from repro.scheduling.equiarea import equiarea_schedule
from repro.scheduling.interleaved import interleaved_schedule
from repro.scheduling.schemes import SCHEME_2X2, SCHEME_3X1, Scheme

__all__ = ["SchedulerAblation", "run", "report"]


@dataclass(frozen=True)
class SchedulerAblation:
    workload: WorkloadSpec
    n_gpus: int
    ea_times: np.ndarray
    la_times: np.ndarray
    il_times: np.ndarray
    scheme3x1_times: np.ndarray

    @property
    def ea_makespan(self) -> float:
        return float(self.ea_times.max())

    @property
    def la_makespan(self) -> float:
        return float(self.la_times.max())

    @property
    def il_makespan(self) -> float:
        return float(self.il_times.max())

    @property
    def interleave_improvement(self) -> float:
        """EA makespan / interleaved makespan (>1 = interleaving wins)."""
        return self.ea_makespan / self.il_makespan

    @property
    def resizing_improvement(self) -> float:
        return self.ea_makespan / self.la_makespan


def run(
    workload: WorkloadSpec = ACC,
    n_nodes: int = 100,
    gpus_per_node: int = 6,
    scheme: "Scheme | None" = None,
    iterations: int = 6,
    block_size: int = 4096,
) -> SchedulerAblation:
    scheme = scheme or SCHEME_2X2
    n_gpus = n_nodes * gpus_per_node
    memory = MemoryConfig()

    def times_fn(schedule):
        return gpu_busy_times(
            schedule, workload.tumor_words, workload.normal_words, memory
        )

    ea = equiarea_schedule(scheme, workload.g, n_gpus)
    la = latency_aware_schedule(
        scheme, workload.g, n_gpus, times_fn, iterations=iterations
    )
    il = interleaved_schedule(scheme, workload.g, n_gpus, block_size=block_size)
    ea3 = equiarea_schedule(SCHEME_3X1, workload.g, n_gpus)
    return SchedulerAblation(
        workload=workload,
        n_gpus=n_gpus,
        ea_times=times_fn(ea),
        la_times=times_fn(la),
        il_times=interleaved_gpu_busy_times(
            il, workload.tumor_words, workload.normal_words, memory
        ),
        scheme3x1_times=times_fn(ea3),
    )


def report(result: SchedulerAblation) -> str:
    def row(label, times):
        return (
            f"  {label:28s} makespan {times.max():8.2f} s, "
            f"imbalance {times.max() / times.mean():6.3f}x"
        )

    return "\n".join(
        [
            f"Latency-aware scheduling ablation ({result.workload.name}, "
            f"{result.n_gpus} GPUs, 2x2 scheme)",
            row("equi-area (paper baseline):", result.ea_times),
            row("latency-aware resizing:", result.la_times),
            row("interleaved block-cyclic:", result.il_times),
            row("3x1 scheme (paper's remedy):", result.scheme3x1_times),
            f"  resizing recovers {result.resizing_improvement:.2f}x; "
            f"interleaving recovers {result.interleave_improvement:.2f}x "
            "(the straggler is occupancy-bound, not work-bound)",
        ]
    )
