"""Fig. 6 — compute utilization across 600 GPUs, 2x2 scheme, ACC dataset.

Paper observations reproduced here:

* (a) utilization generally *decreases* with GPU index — equi-area gives
  every GPU equal combinations, but low-index GPUs hold few, heavy
  threads whose exposed load latency makes them stragglers;
* (b) DRAM read/write throughput *increases* with GPU index and is
  inversely correlated with utilization up to the transition;
* late GPUs flip from memory-bound to compute-bound (paper: ~GPU #500);
* (c) stalls split into memory dependency / memory throttle / execution
  dependency, with memory dependency dominating the low-index GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.memopt import MemoryConfig
from repro.gpusim.profiler import GpuProfile
from repro.perfmodel.utilization import profile_schedule
from repro.perfmodel.workloads import ACC, WorkloadSpec
from repro.scheduling.schemes import SCHEME_2X2

__all__ = ["Fig6Result", "run", "report"]


@dataclass(frozen=True)
class Fig6Result:
    workload: WorkloadSpec
    n_nodes: int
    profile: GpuProfile

    @property
    def transition_gpu(self) -> "int | None":
        return self.profile.memory_to_compute_transition()

    def utilization_trend(self) -> float:
        """Linear-fit slope of utilization vs GPU index (negative = decaying)."""
        u = self.profile.utilization
        x = np.arange(len(u))
        return float(np.polyfit(x, u, 1)[0])


def run(workload: WorkloadSpec = ACC, n_nodes: int = 100) -> Fig6Result:
    profile = profile_schedule(
        SCHEME_2X2, workload, n_nodes, memory=MemoryConfig()
    )
    return Fig6Result(workload=workload, n_nodes=n_nodes, profile=profile)


def report(result: Fig6Result) -> str:
    prof = result.profile
    u, d = prof.utilization, prof.dram_read_bps
    idxs = np.linspace(0, prof.n_gpus - 1, 13).astype(int)
    lines = [
        f"Fig 6: 2x2 scheme on {result.workload.name}, "
        f"{result.n_nodes} nodes ({prof.n_gpus} GPUs)",
        "  gpu | utilization | dram read GB/s | mem-dep | mem-thr | exec-dep | bound",
    ]
    md = prof.stall_memory_dependency
    mt = prof.stall_memory_throttle
    ed = prof.stall_execution_dependency
    for i in idxs:
        lines.append(
            f"  {i:4d} | {u[i]:11.3f} | {d[i] / 1e9:14.2f} | "
            f"{md[i]:7.2f} | {mt[i]:7.2f} | {ed[i]:8.2f} | {prof.bounds[i]}"
        )
    lines.append(
        f"  utilization trend (slope/GPU): {result.utilization_trend():.2e} "
        "(negative = decaying, as in the paper)"
    )
    lines.append(
        f"  memory->compute transition at GPU #{result.transition_gpu} "
        f"of {prof.n_gpus} (paper: ~#500 of 600)"
    )
    return "\n".join(lines)
