"""Fig. 7 — balanced compute utilization of the 3x1 scheme on BRCA.

The tetrahedral mapping gives every GPU millions of similar-size threads,
so occupancy and latency hiding are uniform and per-GPU utilization is
flat near 100% — the contrast with Fig. 6 that justified adopting 3x1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.profiler import GpuProfile
from repro.perfmodel.utilization import profile_schedule
from repro.perfmodel.workloads import BRCA, WorkloadSpec
from repro.scheduling.schemes import SCHEME_3X1

__all__ = ["Fig7Result", "run", "report"]


@dataclass(frozen=True)
class Fig7Result:
    workload: WorkloadSpec
    n_nodes: int
    profile: GpuProfile

    @property
    def min_utilization(self) -> float:
        return float(self.profile.utilization.min())

    @property
    def utilization_spread(self) -> float:
        u = self.profile.utilization
        return float(u.max() - u.min())


def run(workload: WorkloadSpec = BRCA, n_nodes: int = 100) -> Fig7Result:
    profile = profile_schedule(SCHEME_3X1, workload, n_nodes)
    return Fig7Result(workload=workload, n_nodes=n_nodes, profile=profile)


def report(result: Fig7Result) -> str:
    u = result.profile.utilization
    idxs = np.linspace(0, len(u) - 1, 13).astype(int)
    lines = [
        f"Fig 7: 3x1 scheme on {result.workload.name}, "
        f"{result.n_nodes} nodes ({len(u)} GPUs)",
        "  gpu | utilization",
    ]
    for i in idxs:
        lines.append(f"  {i:4d} | {u[i]:11.4f}")
    lines.append(
        f"  min utilization {result.min_utilization:.4f}, "
        f"spread {result.utilization_spread:.4f} "
        "(paper: flat, balanced across MPI processes)"
    )
    return "\n".join(lines)
