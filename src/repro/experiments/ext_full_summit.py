"""§V extension — projecting to all 27648 Summit GPUs (strategy 1).

The paper used at most 1000 of Summit's 4608 nodes.  This experiment
extends the strong-scaling sweep to the full machine with the same job
model, quantifying how much of the remaining 4.6x node headroom survives
the fixed-cost and straggler terms — and what that means for the
mutation-level workloads of Section V.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mutlevel.projection import mutation_level_factor
from repro.perfmodel.runtime import JobModel
from repro.perfmodel.scaling import ScalingPoint, strong_scaling_sweep
from repro.perfmodel.workloads import BRCA, WorkloadSpec
from repro.scheduling.schemes import SCHEME_3X1

__all__ = ["FullSummitProjection", "run", "report"]

FULL_SUMMIT_NODES = 4608


@dataclass(frozen=True)
class FullSummitProjection:
    workload: WorkloadSpec
    points: list[ScalingPoint]
    mutation_level_days_full_machine: float

    @property
    def full_machine(self) -> ScalingPoint:
        return self.points[-1]

    @property
    def speedup_over_1000_nodes(self) -> float:
        t1000 = next(p.runtime_s for p in self.points if p.n_nodes == 1000)
        return t1000 / self.full_machine.runtime_s


def run(
    workload: WorkloadSpec = BRCA,
    node_counts: "list[int] | None" = None,
) -> FullSummitProjection:
    model = JobModel(scheme=SCHEME_3X1)
    nodes = node_counts or [100, 1000, 2000, 3000, FULL_SUMMIT_NODES]
    points = strong_scaling_sweep(model, workload, nodes, baseline_nodes=nodes[0])
    # Mutation-level 4-hit job on the full machine: gene-level job time
    # scaled by the search-space factor, assuming the same efficiency.
    gene_level_s = points[-1].runtime_s
    mut_days = gene_level_s * mutation_level_factor() / 86400.0
    return FullSummitProjection(
        workload=workload,
        points=points,
        mutation_level_days_full_machine=mut_days,
    )


def report(result: FullSummitProjection) -> str:
    lines = [
        f"Full-Summit projection ({result.workload.name}, 3x1 scheme, "
        f"{FULL_SUMMIT_NODES} nodes = 27648 GPUs)"
    ]
    lines.append("  nodes |  runtime (s) | efficiency")
    for p in result.points:
        lines.append(f"  {p.n_nodes:5d} | {p.runtime_s:12.1f} | {p.efficiency:9.4f}")
    lines.append(
        f"  full machine vs 1000 nodes: "
        f"{result.speedup_over_1000_nodes:.2f}x faster "
        f"(ideal 4.61x) at {result.full_machine.efficiency:.1%} efficiency"
    )
    lines.append(
        "  mutation-level 4-hit job on the full machine (x1.6e5 work): "
        f"~{result.mutation_level_days_full_machine:.0f} days — why Section V "
        "also needs strategies (2)-(4), not just more GPUs"
    )
    return "\n".join(lines)
