"""§V extension — per-GPU matrix-subset distribution.

Strategy (2) of the Discussion: instead of replicating the full
mutation-sample matrix on every GPU (which does not fit for ~4e5-row
mutation-level inputs), ship each GPU only the rows its scheduled
thread range touches.  This experiment sizes both options for the
gene-level (BRCA) and a projected mutation-level input.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bitmatrix.packing import words_for
from repro.perfmodel.memory import GpuMemoryPlan, plan_memory
from repro.perfmodel.workloads import BRCA, WorkloadSpec
from repro.scheduling.equiarea import equiarea_schedule
from repro.scheduling.schemes import SCHEME_3X1

__all__ = ["MemoryDistribution", "run", "report"]

_GB = 1e9


@dataclass(frozen=True)
class MemoryDistribution:
    gene_level: GpuMemoryPlan
    mutation_level: GpuMemoryPlan
    mutation_rows: int


def run(
    workload: WorkloadSpec = BRCA,
    n_nodes: int = 100,
    gpus_per_node: int = 6,
    mutation_rows: int = 400_000,
) -> MemoryDistribution:
    words = workload.tumor_words + workload.normal_words
    n_gpus = n_nodes * gpus_per_node
    gene_sched = equiarea_schedule(SCHEME_3X1, workload.g, n_gpus)
    gene_plan = plan_memory(gene_sched, words)

    # Mutation-level projection: same samples, ~20x the rows.  Scheduling
    # the full C(4e5, 3) grid is itself fine (O(rows) level walk).
    mut_words = words_for(workload.n_tumor) + words_for(workload.n_normal)
    mut_sched = equiarea_schedule(SCHEME_3X1, mutation_rows, n_gpus)
    mut_plan = plan_memory(mut_sched, mut_words)
    return MemoryDistribution(
        gene_level=gene_plan, mutation_level=mut_plan, mutation_rows=mutation_rows
    )


def report(result: MemoryDistribution) -> str:
    g, m = result.gene_level, result.mutation_level
    return "\n".join(
        [
            "Matrix distribution sizing (paper Section V, strategy 2)",
            "  gene level (G=19411):",
            f"    full replication per GPU: {g.full_replication_bytes / _GB:8.3f} GB "
            f"(fits 16 GB: {g.replication_fits})",
            f"    hot-set max per GPU:      {g.max_hot_bytes / _GB:8.3f} GB "
            f"(mean device-resident fraction {g.mean_hot_fraction:.2f})",
            f"  mutation level ({result.mutation_rows} rows):",
            f"    full replication per GPU: {m.full_replication_bytes / _GB:8.3f} GB "
            f"(fits 16 GB: {m.replication_fits})",
            f"    hot-set max per GPU:      {m.max_hot_bytes / _GB:8.3f} GB "
            f"(mean device-resident fraction {m.mean_hot_fraction:.2f}, "
            f"fits: {m.hot_set_fits})",
        ]
    )
