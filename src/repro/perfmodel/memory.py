"""Per-GPU memory-footprint planning — §V strategy (2).

§V proposes *distributing only the required subset* of the (20x larger)
mutation-sample matrices to each GPU.  A partition owning 3x1 threads
``[lo, hi)`` touches two classes of rows with very different intensity:

* **inner rows** — the ``l``-loop rows ``(top(lo), g)``, read once per
  combination: these are the hot set that must be device-resident;
* **tuple rows** — the decoded ``(i, j, k)`` rows, spanning
  ``[0, top(hi-1)]`` but each read only once per thread (prefetch):
  these can stream from host/NVLink without entering the inner loop.

The planner sizes full replication vs hot-set residency per GPU and
checks both against device memory — the accounting that decides whether
a mutation-level input (~4e5 rows) can run without unified-memory
thrashing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.device import V100, DeviceSpec
from repro.scheduling.schedule import Schedule
from repro.scheduling.workload import thread_top_index

__all__ = ["GpuMemoryPlan", "plan_memory"]

_WORD_BYTES = 8


@dataclass(frozen=True)
class GpuMemoryPlan:
    """Resident-set summary for one schedule on one device type."""

    n_parts: int
    words: int
    full_replication_bytes: int
    hot_bytes: np.ndarray  # per partition: inner (per-combination) rows
    streamable_bytes: np.ndarray  # per partition: tuple (per-thread) rows
    device_bytes: int

    @property
    def max_hot_bytes(self) -> int:
        return int(self.hot_bytes.max()) if len(self.hot_bytes) else 0

    @property
    def replication_fits(self) -> bool:
        return self.full_replication_bytes <= self.device_bytes

    @property
    def hot_set_fits(self) -> bool:
        return self.max_hot_bytes <= self.device_bytes

    @property
    def mean_hot_fraction(self) -> float:
        """Average fraction of the matrix that must be device-resident."""
        if self.full_replication_bytes == 0:
            return 0.0
        return float(self.hot_bytes.mean() / self.full_replication_bytes)


def plan_memory(
    schedule: Schedule,
    words: int,
    device: DeviceSpec = V100,
) -> GpuMemoryPlan:
    """Memory plan for a schedule over a ``g x words`` packed matrix pair."""
    g = schedule.g
    full = g * words * _WORD_BYTES
    hot = np.zeros(schedule.n_parts, dtype=np.int64)
    stream = np.zeros(schedule.n_parts, dtype=np.int64)
    for p in range(schedule.n_parts):
        lo, hi = schedule.thread_range(p)
        if hi <= lo:
            continue
        top_lo = int(
            thread_top_index(schedule.scheme, np.asarray([lo], dtype=np.uint64))[0]
        )
        top_hi = int(
            thread_top_index(schedule.scheme, np.asarray([hi - 1], dtype=np.uint64))[0]
        )
        inner_rows = max(0, g - 1 - top_lo)  # rows (top_lo, g)
        tuple_rows = top_hi + 1  # rows [0, top_hi]
        hot[p] = inner_rows * words * _WORD_BYTES
        stream[p] = tuple_rows * words * _WORD_BYTES
    return GpuMemoryPlan(
        n_parts=schedule.n_parts,
        words=words,
        full_replication_bytes=full,
        hot_bytes=hot,
        streamable_bytes=stream,
        device_bytes=device.dram_bytes,
    )
