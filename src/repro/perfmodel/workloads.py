"""Paper-scale workload descriptions.

Sample and gene counts stated in the paper are kept exact (BRCA: 911
tumor samples, G = 19411; LGG: 532 tumor / 329 normal); the rest are
synthetic-but-plausible TCGA magnitudes, consistent with
:mod:`repro.data.cancers`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bitmatrix.packing import words_for

__all__ = ["WorkloadSpec", "BRCA", "ACC", "ESCA", "LGG"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Dataset-level parameters the performance model needs."""

    name: str
    g: int
    n_tumor: int
    n_normal: int

    def __post_init__(self) -> None:
        if self.g < 4:
            raise ValueError("need at least 4 genes")
        if self.n_tumor < 1 or self.n_normal < 0:
            raise ValueError("invalid sample counts")

    @property
    def tumor_words(self) -> int:
        return words_for(self.n_tumor)

    @property
    def normal_words(self) -> int:
        return words_for(self.n_normal)

    @property
    def words(self) -> int:
        """Packed width ANDed per combination (tumor + normal)."""
        return self.tumor_words + self.normal_words


# Exact figures from the paper where stated; see repro.data.cancers.
BRCA = WorkloadSpec(name="BRCA", g=19411, n_tumor=911, n_normal=1019)
LGG = WorkloadSpec(name="LGG", g=17900, n_tumor=532, n_normal=329)
ACC = WorkloadSpec(name="ACC", g=8400, n_tumor=77, n_normal=85)
ESCA = WorkloadSpec(name="ESCA", g=14300, n_tumor=184, n_normal=201)
