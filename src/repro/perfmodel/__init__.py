"""Paper-scale performance reproduction.

Combines the *real* scheduler output (exact thread ranges and work
counts), the *exact* memory-access counts, the analytic V100 timing model
(:mod:`repro.gpusim`), and the virtual-time cluster (:mod:`repro.cluster`)
to predict per-GPU, per-rank, and whole-job runtimes at full Summit scale
(G ~ 19411, up to 1000 nodes) — the machinery behind Figs. 4, 6, 7, 8 and
the ED-vs-EA / memory-optimization tables.
"""

from repro.perfmodel.workloads import WorkloadSpec, BRCA, ACC, ESCA, LGG
from repro.perfmodel.runtime import (
    JobModel,
    JobResult,
    IterationModel,
    partition_kernel_stats,
    gpu_busy_times,
    interleaved_gpu_busy_times,
)
from repro.perfmodel.memory import GpuMemoryPlan, plan_memory
from repro.perfmodel.roofline import RooflinePoint, operating_point, ridge_intensity
from repro.perfmodel.iterations import IterationFit, fit_iteration_model
from repro.perfmodel.utilization import profile_schedule
from repro.perfmodel.scaling import (
    elastic_strong_scaling_sweep,
    simulate_elastic_makespan,
    ScalingPoint,
    strong_scaling_sweep,
    weak_scaling_sweep,
    scaling_efficiency,
)

__all__ = [
    "WorkloadSpec",
    "BRCA",
    "ACC",
    "ESCA",
    "LGG",
    "JobModel",
    "JobResult",
    "IterationModel",
    "partition_kernel_stats",
    "gpu_busy_times",
    "interleaved_gpu_busy_times",
    "GpuMemoryPlan",
    "plan_memory",
    "RooflinePoint",
    "operating_point",
    "ridge_intensity",
    "IterationFit",
    "fit_iteration_model",
    "profile_schedule",
    "ScalingPoint",
    "strong_scaling_sweep",
    "weak_scaling_sweep",
    "scaling_efficiency",
    "elastic_strong_scaling_sweep",
    "simulate_elastic_makespan",
]
