"""Per-GPU utilization profiles (Figs. 6 and 7).

Builds the real schedule for a node count, derives every GPU's exact
kernel statistics, and runs the NVPROF-style profiler over them.  The 2x2
scheme on a small dataset (ACC) shows the paper's signature: utilization
decaying with GPU index, DRAM throughput rising, and a memory-bound ->
compute-bound transition late in the GPU range; the 3x1 scheme on BRCA is
flat.
"""

from __future__ import annotations

from repro.core.memopt import MemoryConfig
from repro.gpusim.device import V100, DeviceSpec
from repro.gpusim.profiler import GpuProfile, Profiler
from repro.gpusim.timing import TimingTuning
from repro.perfmodel.runtime import partition_kernel_stats
from repro.perfmodel.workloads import WorkloadSpec
from repro.scheduling.equiarea import equiarea_schedule
from repro.scheduling.schemes import Scheme

__all__ = ["profile_schedule"]


def profile_schedule(
    scheme: Scheme,
    workload: WorkloadSpec,
    n_nodes: int,
    gpus_per_node: int = 6,
    memory: "MemoryConfig | None" = None,
    device: DeviceSpec = V100,
    tuning: "TimingTuning | None" = None,
) -> GpuProfile:
    """Profile every GPU of an equi-area run's first greedy iteration."""
    memory = memory if memory is not None else MemoryConfig()
    tuning = tuning if tuning is not None else TimingTuning()
    schedule = equiarea_schedule(scheme, workload.g, n_nodes * gpus_per_node)
    work = schedule.work_per_part()
    launches = [
        partition_kernel_stats(
            schedule, p, work[p], workload.tumor_words, workload.normal_words, memory
        )
        for p in range(schedule.n_parts)
    ]
    return Profiler(device=device, tuning=tuning).profile(launches)
