"""Roofline analysis of the scoring kernel.

Places each (scheme, memory-config, word-width) operating point on the
V100 roofline: arithmetic intensity (ops per DRAM byte, after cache
reuse) against the ridge point (peak ops / peak bandwidth).  Points left
of the ridge are bandwidth-bound; right of it compute-bound.  This is
the quantitative backbone of the Fig. 6 discussion — the 2x2 scheme's
low-occupancy partitions *act* memory-bound even when their intensity is
right of the ridge, because exposed latency derates their effective
compute peak.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.memopt import MemoryConfig
from repro.gpusim.device import V100, DeviceSpec
from repro.gpusim.timing import TimingTuning
from repro.scheduling.schemes import Scheme

__all__ = ["RooflinePoint", "ridge_intensity", "operating_point"]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel configuration on the roofline."""

    label: str
    ops_per_combo: float
    dram_bytes_per_combo: float
    peak_ops_per_s: float
    peak_bandwidth_bps: float

    @property
    def intensity(self) -> float:
        """Ops per DRAM byte."""
        if self.dram_bytes_per_combo == 0:
            return float("inf")
        return self.ops_per_combo / self.dram_bytes_per_combo

    @property
    def ridge(self) -> float:
        return self.peak_ops_per_s / self.peak_bandwidth_bps

    @property
    def compute_bound(self) -> bool:
        return self.intensity >= self.ridge

    @property
    def attainable_ops_per_s(self) -> float:
        """min(peak, intensity * bandwidth) — the roofline itself."""
        return min(self.peak_ops_per_s, self.intensity * self.peak_bandwidth_bps)


def ridge_intensity(
    device: DeviceSpec = V100, tuning: "TimingTuning | None" = None
) -> float:
    """Ops/byte at which the kernel transitions to compute-bound."""
    tuning = tuning or TimingTuning()
    return (device.peak_int_ops_per_s * tuning.issue_efficiency) / (
        device.dram_bandwidth_bps
    )


def operating_point(
    scheme: Scheme,
    words: int,
    memory: "MemoryConfig | None" = None,
    device: DeviceSpec = V100,
    tuning: "TimingTuning | None" = None,
    label: "str | None" = None,
) -> RooflinePoint:
    """Roofline placement of one kernel configuration.

    Bytes per combination are the raw word reads derated by cache reuse
    (warp broadcast + L2), matching the timing model's memory bound.
    """
    memory = memory or MemoryConfig()
    tuning = tuning or TimingTuning()
    pre = min(memory.prefetched_rows, scheme.flattened)
    rows = (scheme.flattened - pre) + scheme.inner
    ops = tuning.ops_per_combo(words, rows)
    raw_bytes = rows * words * 8
    dram_bytes = raw_bytes / tuning.cache_reuse
    return RooflinePoint(
        label=label or f"{scheme.name}/{memory.label}/w={words}",
        ops_per_combo=ops,
        dram_bytes_per_combo=dram_bytes,
        peak_ops_per_s=device.peak_int_ops_per_s * tuning.issue_efficiency,
        peak_bandwidth_bps=device.dram_bandwidth_bps,
    )
