"""Job runtime model: schedule -> per-GPU kernels -> ranks -> greedy loop.

``JobModel.run`` predicts a full multi-iteration greedy solve on an
``n_nodes``-node Summit allocation: it builds the real schedule, derives
each GPU partition's :class:`KernelStats` (exact thread / combination /
byte counts), evaluates the V100 timing model per GPU, folds GPUs into
per-rank times, and advances a :class:`VirtualCluster` through each
iteration's compute + reduce + broadcast sequence.  BitSplicing shrinks
the packed tumor width between iterations according to the iteration
model's cover schedule.

Since only the packed word width changes between greedy iterations, the
per-partition thread/combination/access structure is computed once per
schedule and re-scaled per iteration — this is what makes 1000-node,
12-iteration sweeps run in milliseconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.bitmatrix.packing import words_for
from repro.cluster.network import SUMMIT_NETWORK, NetworkModel
from repro.cluster.virtual import VirtualCluster
from repro.core.combination import COMBO_RECORD_BYTES
from repro.core.memopt import MemoryConfig, global_word_reads
from repro.gpusim.device import V100, DeviceSpec
from repro.gpusim.kernel import KernelStats
from repro.gpusim.timing import TimingTuning, kernel_time
from repro.perfmodel.workloads import WorkloadSpec
from repro.scheduling.equiarea import equiarea_schedule
from repro.scheduling.equidistance import equidistance_schedule
from repro.scheduling.schedule import Schedule
from repro.scheduling.schemes import Scheme
from repro.scheduling.workload import level_work, thread_top_index

__all__ = [
    "IterationModel",
    "JobModel",
    "JobResult",
    "PartitionProfile",
    "partition_kernel_stats",
    "partition_profiles",
    "gpu_busy_times",
]


@dataclass(frozen=True)
class IterationModel:
    """Greedy-loop shape: how many iterations, how fast samples are covered.

    BRCA-like cohorts need on the order of a dozen combinations to cover
    all tumor samples, with early combinations covering large fractions
    (the geometric ``cover_fraction`` here).  Only the *width schedule*
    matters to the performance model, not which combinations are found.
    """

    n_iterations: int = 12
    cover_fraction: float = 0.35

    def tumor_samples_remaining(self, n_tumor: int) -> list[int]:
        """Uncovered tumor samples entering each iteration."""
        remaining = float(n_tumor)
        out = []
        for _ in range(self.n_iterations):
            out.append(max(1, int(round(remaining))))
            remaining *= 1.0 - self.cover_fraction
        return out


@dataclass(frozen=True)
class PartitionProfile:
    """Width-independent structure of one GPU partition.

    ``word_read_units`` is the word-read count per unit of packed width:
    multiply by the iteration's total word width to get actual reads.
    """

    n_threads: int
    n_combos: int
    max_thread_combos: int
    word_read_units: int


def partition_kernel_stats(
    schedule: Schedule,
    part: int,
    part_work: int,
    tumor_words: int,
    normal_words: int,
    memory: MemoryConfig,
) -> KernelStats:
    """Exact kernel statistics for one GPU partition (uncached path)."""
    prof = _profile_one(schedule, part, part_work, memory)
    return _stats_from_profile(
        prof, schedule.scheme, tumor_words + normal_words, memory
    )


def _profile_one(
    schedule: Schedule, part: int, part_work: int, memory: MemoryConfig
) -> PartitionProfile:
    lo, hi = schedule.thread_range(part)
    if hi <= lo:
        return PartitionProfile(0, 0, 0, 0)
    scheme, g = schedule.scheme, schedule.g
    units = global_word_reads(scheme, g, 1, lo, hi, memory)
    top_lo = int(thread_top_index(scheme, np.asarray([lo], dtype=np.uint64))[0])
    max_combos = level_work(scheme, g, top_lo)
    return PartitionProfile(
        n_threads=hi - lo,
        n_combos=part_work,
        max_thread_combos=max(max_combos, 1 if part_work else 0),
        word_read_units=units,
    )


def partition_profiles(schedule: Schedule, memory: MemoryConfig) -> list[PartitionProfile]:
    """Width-independent structure for every partition of a schedule."""
    work = schedule.work_per_part()
    return [_profile_one(schedule, p, work[p], memory) for p in range(schedule.n_parts)]


def _stats_from_profile(
    prof: PartitionProfile, scheme: Scheme, words: int, memory: MemoryConfig
) -> KernelStats:
    pre = min(memory.prefetched_rows, scheme.flattened)
    rows = (scheme.flattened - pre) + scheme.inner
    return KernelStats(
        n_threads=prof.n_threads,
        n_combos=prof.n_combos,
        words_per_combo=words,
        rows_per_combo=rows,
        prefetched_rows=pre,
        bytes_read=prof.word_read_units * words * 8,
        max_thread_combos=prof.max_thread_combos,
    )


def gpu_busy_times(
    schedule: Schedule,
    tumor_words: int,
    normal_words: int,
    memory: MemoryConfig,
    device: DeviceSpec = V100,
    tuning: TimingTuning = TimingTuning(),
    profiles: "list[PartitionProfile] | None" = None,
) -> np.ndarray:
    """Per-partition kernel total times for one greedy iteration."""
    if profiles is None:
        profiles = partition_profiles(schedule, memory)
    words = tumor_words + normal_words
    times = np.empty(len(profiles))
    for p, prof in enumerate(profiles):
        stats = _stats_from_profile(prof, schedule.scheme, words, memory)
        times[p] = kernel_time(stats, device, tuning).total_s
    return times


@dataclass
class JobResult:
    """Predicted job timing."""

    total_s: float
    iteration_s: list[float]
    rank_compute_s: np.ndarray
    rank_comm_s: np.ndarray
    setup_s: float
    trace: "object | None" = None  # ClusterTrace when run(trace=True)

    @property
    def n_nodes(self) -> int:
        return len(self.rank_compute_s)


@dataclass
class JobModel:
    """End-to-end Summit job predictor.

    ``node_jitter_sigma`` models per-node performance variability (OS
    noise, clock/thermal differences): each rank's compute time is scaled
    by a deterministic, rank-seeded factor ``~ N(1, sigma)``; the job
    follows the straggler, which costs a few percent of efficiency even
    with perfectly balanced work.

    Fixed costs: ``setup_base_s`` covers schedule computation (under a
    minute, Section III-C) and data staging; ``setup_per_node_s`` models
    job launch / MPI_Init scaling with allocation size (jsrun startup is
    minutes at 1000 nodes); ``host_iteration_s`` is per-iteration serial
    host work (result collection, splice, relaunch, synchronization).
    These non-scaling terms are what pull strong-scaling efficiency below
    100% as node count grows.
    """

    scheme: Scheme
    scheduler: str = "equiarea"
    gpus_per_node: int = 6
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    device: DeviceSpec = V100
    tuning: TimingTuning = field(default_factory=TimingTuning)
    network: NetworkModel = field(default_factory=lambda: SUMMIT_NETWORK)
    iteration_model: IterationModel = field(default_factory=IterationModel)
    setup_base_s: float = 30.0
    setup_per_node_s: float = 0.05
    host_iteration_s: float = 10.0
    node_jitter_sigma: float = 0.04
    jitter_seed: int = 2021

    def build_schedule(self, g: int, n_nodes: int) -> Schedule:
        n_parts = n_nodes * self.gpus_per_node
        if self.scheduler == "equiarea":
            return equiarea_schedule(self.scheme, g, n_parts)
        if self.scheduler == "equidistance":
            return equidistance_schedule(self.scheme, g, n_parts)
        raise ValueError(f"unknown scheduler {self.scheduler!r}")

    def setup_seconds(self, n_nodes: int) -> float:
        return self.setup_base_s + self.setup_per_node_s * n_nodes

    def _rank_times(self, gpu_times: np.ndarray, n_nodes: int) -> np.ndarray:
        """Fold per-GPU times into per-rank times (6 concurrent GPUs/rank)."""
        padded = np.zeros(n_nodes * self.gpus_per_node)
        padded[: len(gpu_times)] = gpu_times
        per_rank = padded.reshape(n_nodes, self.gpus_per_node).max(axis=1)
        rng = np.random.default_rng(self.jitter_seed)
        jitter = 1.0 + self.node_jitter_sigma * rng.standard_normal(n_nodes)
        return per_rank * np.clip(jitter, 0.85, 1.25)

    def run(
        self,
        workload: WorkloadSpec,
        n_nodes: int,
        max_iterations: "int | None" = None,
        trace: bool = False,
    ) -> JobResult:
        """Predict the full greedy job on ``n_nodes`` nodes.

        With ``trace=True`` the result carries a
        :class:`repro.cluster.trace.ClusterTrace` with per-rank,
        per-iteration phase events (compute / reduce / bcast).
        """
        schedule = self.build_schedule(workload.g, n_nodes)
        profiles = partition_profiles(schedule, self.memory)
        if trace:
            from repro.cluster.trace import TracingCluster

            cluster = TracingCluster(n_nodes, network=self.network)
        else:
            cluster = VirtualCluster(n_ranks=n_nodes, network=self.network)
        iteration_s: list[float] = []
        remaining = self.iteration_model.tumor_samples_remaining(workload.n_tumor)
        if max_iterations is not None:
            remaining = remaining[:max_iterations]
        first = True
        for n_t in remaining:
            if trace and not first:
                cluster.next_iteration()
            first = False
            t_words = (
                words_for(n_t) if self.memory.bitsplice else workload.tumor_words
            )
            before = cluster.elapsed_s
            gpu_times = gpu_busy_times(
                schedule,
                t_words,
                workload.normal_words,
                self.memory,
                self.device,
                self.tuning,
                profiles=profiles,
            )
            cluster.compute(self._rank_times(gpu_times, n_nodes))
            cluster.reduce_to_root(COMBO_RECORD_BYTES)
            # Broadcast winner + covered-sample mask, then serial host work.
            cluster.bcast_from_root(COMBO_RECORD_BYTES + t_words * 8)
            cluster.compute(np.full(n_nodes, self.host_iteration_s))
            iteration_s.append(cluster.elapsed_s - before)
        return JobResult(
            total_s=cluster.elapsed_s + self.setup_seconds(n_nodes),
            iteration_s=iteration_s,
            rank_compute_s=cluster.compute_times(),
            rank_comm_s=cluster.comm_times(),
            setup_s=self.setup_seconds(n_nodes),
            trace=cluster.trace if trace else None,
        )

    # -- single-processor reference estimates ---------------------------

    def single_gpu_seconds(self, workload: WorkloadSpec, hits: "int | None" = None) -> float:
        """One-V100 estimate for the whole greedy job (no MPI terms)."""
        scheme = self.scheme if hits is None else Scheme(hits - 1, 1)
        total = 0.0
        for n_t in self.iteration_model.tumor_samples_remaining(workload.n_tumor):
            t_words = (
                words_for(n_t) if self.memory.bitsplice else workload.tumor_words
            )
            words = t_words + workload.normal_words
            combos = math.comb(workload.g, scheme.hits)
            pre = min(self.memory.prefetched_rows, scheme.flattened)
            rows = (scheme.flattened - pre) + scheme.inner
            ops = combos * self.tuning.ops_per_combo(words, rows)
            total += ops / (
                self.device.peak_int_ops_per_s * self.tuning.issue_efficiency
            )
        return total

    def single_cpu_seconds(
        self,
        workload: WorkloadSpec,
        hits: "int | None" = None,
        cpu_ops_per_s: float = 2.2e9,
    ) -> float:
        """Single-CPU-core estimate (same op counts, scalar throughput).

        The default throughput (~2.2e9 simple int ops/s) reflects a
        single Power9 core running the scalar reference code; it places
        the 3-hit BRCA estimate near the paper's measured 13860 minutes.
        """
        gpu = self.single_gpu_seconds(workload, hits)
        return gpu * (
            self.device.peak_int_ops_per_s * self.tuning.issue_efficiency
        ) / cpu_ops_per_s


def interleaved_gpu_busy_times(
    schedule,
    tumor_words: int,
    normal_words: int,
    memory: MemoryConfig,
    device: DeviceSpec = V100,
    tuning: TimingTuning = TimingTuning(),
) -> np.ndarray:
    """Per-partition kernel times for a block-cyclic (interleaved) schedule.

    Same timing model as :func:`gpu_busy_times`; the statistics are summed
    over each partition's disjoint blocks.
    """
    from repro.core.memopt import global_word_reads

    words = tumor_words + normal_words
    work = schedule.work_per_part()
    pre = min(memory.prefetched_rows, schedule.scheme.flattened)
    rows = (schedule.scheme.flattened - pre) + schedule.scheme.inner
    times = np.empty(schedule.n_parts)
    for p in range(schedule.n_parts):
        reads = 0
        n_threads = 0
        for lo, hi in schedule.ranges(p):
            reads += global_word_reads(
                schedule.scheme, schedule.g, words, lo, hi, memory
            )
            n_threads += hi - lo
        stats = KernelStats(
            n_threads=n_threads,
            n_combos=work[p],
            words_per_combo=words,
            rows_per_combo=rows,
            prefetched_rows=pre,
            bytes_read=reads * 8,
            max_thread_combos=max(schedule.max_thread_work(p), 1 if work[p] else 0),
        )
        times[p] = kernel_time(stats, device, tuning).total_s
    return times
