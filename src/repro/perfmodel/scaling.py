"""Strong- and weak-scaling sweeps (Fig. 4).

Strong scaling: fixed workload (BRCA, 4-hit), node counts 100..1000;
efficiency of N nodes relative to the 100-node baseline is
``T(100) * 100 / (T(N) * N)``.

Weak scaling: fixed work *per GPU*, limited to the first greedy
iteration (as in the paper, to remove iteration-count variability).  We
hold per-GPU work constant by scaling the gene count so that
``C(G_N, h) = C(G_100, h) * N / 100``; efficiency is ``T(100) / T(N)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.perfmodel.runtime import JobModel
from repro.perfmodel.workloads import WorkloadSpec

__all__ = [
    "ScalingPoint",
    "scaling_efficiency",
    "strong_scaling_sweep",
    "weak_scaling_sweep",
]


@dataclass(frozen=True)
class ScalingPoint:
    """One node-count measurement of a scaling sweep."""

    n_nodes: int
    runtime_s: float
    efficiency: float


def scaling_efficiency(
    baseline_nodes: int, baseline_s: float, n_nodes: int, runtime_s: float
) -> float:
    """Strong-scaling efficiency vs an arbitrary baseline node count."""
    ideal = baseline_s * baseline_nodes / n_nodes
    return ideal / runtime_s


def strong_scaling_sweep(
    model: JobModel,
    workload: WorkloadSpec,
    node_counts: "list[int] | None" = None,
    baseline_nodes: int = 100,
) -> list[ScalingPoint]:
    """Fixed-workload sweep; efficiency relative to ``baseline_nodes``."""
    node_counts = node_counts or [100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]
    if baseline_nodes not in node_counts:
        node_counts = sorted(set(node_counts) | {baseline_nodes})
    runtimes = {n: model.run(workload, n).total_s for n in node_counts}
    base = runtimes[baseline_nodes]
    return [
        ScalingPoint(
            n_nodes=n,
            runtime_s=runtimes[n],
            efficiency=scaling_efficiency(baseline_nodes, base, n, runtimes[n]),
        )
        for n in node_counts
    ]


def _gene_count_for_work(h: int, target_work: int, g_hint: int) -> int:
    """Smallest G with ``C(G, h) >= target_work`` (monotone search)."""
    g = max(h, int(g_hint))
    while math.comb(g, h) < target_work:
        g += max(1, g // 50)
    while g > h and math.comb(g - 1, h) >= target_work:
        g -= 1
    return g


def weak_scaling_sweep(
    model: JobModel,
    workload: WorkloadSpec,
    node_counts: "list[int] | None" = None,
    baseline_nodes: int = 100,
) -> list[ScalingPoint]:
    """Fixed work-per-GPU sweep (first iteration only)."""
    node_counts = node_counts or [100, 200, 300, 400, 500]
    if baseline_nodes not in node_counts:
        node_counts = sorted(set(node_counts) | {baseline_nodes})
    h = model.scheme.hits
    base_work = math.comb(workload.g, h)
    points = []
    runtimes = {}
    for n in node_counts:
        target = base_work * n // baseline_nodes
        g_n = _gene_count_for_work(h, target, workload.g)
        scaled = WorkloadSpec(
            name=f"{workload.name}@{n}",
            g=g_n,
            n_tumor=workload.n_tumor,
            n_normal=workload.n_normal,
        )
        runtimes[n] = model.run(scaled, n, max_iterations=1).total_s
    base = runtimes[baseline_nodes]
    for n in node_counts:
        points.append(
            ScalingPoint(n_nodes=n, runtime_s=runtimes[n], efficiency=base / runtimes[n])
        )
    return points
