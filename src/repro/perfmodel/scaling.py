"""Strong- and weak-scaling sweeps (Fig. 4).

Strong scaling: fixed workload (BRCA, 4-hit), node counts 100..1000;
efficiency of N nodes relative to the 100-node baseline is
``T(100) * 100 / (T(N) * N)``.

Weak scaling: fixed work *per GPU*, limited to the first greedy
iteration (as in the paper, to remove iteration-count variability).  We
hold per-GPU work constant by scaling the gene count so that
``C(G_N, h) = C(G_100, h) * N / 100``; efficiency is ``T(100) / T(N)``.

Elastic scaling under churn: the lease-based work-stealing runtime is
modelled by a deterministic list-scheduling simulation
(:func:`simulate_elastic_makespan`): per-lease kernel durations are
pulled greedily by an executor fleet that loses and gains members at
configured completed-lease fractions — the same progress-fraction
trigger the live :class:`repro.faults.plan.FaultPlan` membership specs
use.  Efficiency is measured against the *static* baseline runtime, so
the sweep answers "what does ±20% mid-solve churn cost vs the paper's
fixed fleet?".
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.bitmatrix.packing import words_for
from repro.cluster.virtual import VirtualCluster
from repro.core.combination import COMBO_RECORD_BYTES
from repro.perfmodel.runtime import JobModel, gpu_busy_times, partition_profiles
from repro.perfmodel.workloads import WorkloadSpec
from repro.scheduling.equiarea import equiarea_schedule

__all__ = [
    "ScalingPoint",
    "elastic_strong_scaling_sweep",
    "scaling_efficiency",
    "simulate_elastic_makespan",
    "strong_scaling_sweep",
    "weak_scaling_sweep",
]


@dataclass(frozen=True)
class ScalingPoint:
    """One node-count measurement of a scaling sweep."""

    n_nodes: int
    runtime_s: float
    efficiency: float


def scaling_efficiency(
    baseline_nodes: int, baseline_s: float, n_nodes: int, runtime_s: float
) -> float:
    """Strong-scaling efficiency vs an arbitrary baseline node count."""
    ideal = baseline_s * baseline_nodes / n_nodes
    return ideal / runtime_s


def strong_scaling_sweep(
    model: JobModel,
    workload: WorkloadSpec,
    node_counts: "list[int] | None" = None,
    baseline_nodes: int = 100,
) -> list[ScalingPoint]:
    """Fixed-workload sweep; efficiency relative to ``baseline_nodes``."""
    node_counts = node_counts or [100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]
    if baseline_nodes not in node_counts:
        node_counts = sorted(set(node_counts) | {baseline_nodes})
    runtimes = {n: model.run(workload, n).total_s for n in node_counts}
    base = runtimes[baseline_nodes]
    return [
        ScalingPoint(
            n_nodes=n,
            runtime_s=runtimes[n],
            efficiency=scaling_efficiency(baseline_nodes, base, n, runtimes[n]),
        )
        for n in node_counts
    ]


def _gene_count_for_work(h: int, target_work: int, g_hint: int) -> int:
    """Smallest G with ``C(G, h) >= target_work`` (monotone search)."""
    g = max(h, int(g_hint))
    while math.comb(g, h) < target_work:
        g += max(1, g // 50)
    while g > h and math.comb(g - 1, h) >= target_work:
        g -= 1
    return g


def weak_scaling_sweep(
    model: JobModel,
    workload: WorkloadSpec,
    node_counts: "list[int] | None" = None,
    baseline_nodes: int = 100,
) -> list[ScalingPoint]:
    """Fixed work-per-GPU sweep (first iteration only)."""
    node_counts = node_counts or [100, 200, 300, 400, 500]
    if baseline_nodes not in node_counts:
        node_counts = sorted(set(node_counts) | {baseline_nodes})
    h = model.scheme.hits
    base_work = math.comb(workload.g, h)
    points = []
    runtimes = {}
    for n in node_counts:
        target = base_work * n // baseline_nodes
        g_n = _gene_count_for_work(h, target, workload.g)
        scaled = WorkloadSpec(
            name=f"{workload.name}@{n}",
            g=g_n,
            n_tumor=workload.n_tumor,
            n_normal=workload.n_normal,
        )
        runtimes[n] = model.run(scaled, n, max_iterations=1).total_s
    base = runtimes[baseline_nodes]
    for n in node_counts:
        points.append(
            ScalingPoint(n_nodes=n, runtime_s=runtimes[n], efficiency=base / runtimes[n])
        )
    return points


# -- elastic scaling under churn -----------------------------------------


def simulate_elastic_makespan(
    durations,
    n_ranks: int,
    leaves: "tuple[tuple[float, int], ...]" = (),
    joins: "tuple[tuple[float, int], ...]" = (),
) -> float:
    """Makespan of list-scheduling ``durations`` on an elastic fleet.

    ``durations`` are per-lease compute seconds, consumed in lease-id
    order by whichever executor frees up first — exactly the
    :class:`repro.cluster.leases.LeaseLedger` grant discipline.
    ``leaves`` / ``joins`` are ``(fraction, count)`` membership events
    fired once the assigned-lease fraction reaches the threshold (the
    progress-fraction trigger of ``membership``-site fault specs): a
    leaving executor *drains* — it finishes the lease in flight but
    pulls no more — and a joiner becomes available at the moment the
    churn fires.  Leaves never drain the last executor.

    Deterministic by construction (a heap of ``(free_at, rank)`` with
    total-order tie-breaks), so the sweep is exactly reproducible.
    """
    if n_ranks < 1:
        raise ValueError("need at least one executor")
    n = len(durations)
    if n == 0:
        return 0.0
    heap = [(0.0, r) for r in range(n_ranks)]
    heapq.heapify(heap)
    alive = set(range(n_ranks))
    next_rank = n_ranks
    leave_q = sorted(leaves)
    join_q = sorted(joins)
    li = ji = 0
    makespan = 0.0
    for i, d in enumerate(durations):
        frac = i / n
        while li < len(leave_q) and frac >= leave_q[li][0]:
            count = min(leave_q[li][1], len(alive) - 1)
            for r in sorted(alive, reverse=True)[:count]:
                alive.discard(r)
            li += 1
        while True:
            free_at, r = heapq.heappop(heap)
            if r in alive:
                break
        while ji < len(join_q) and frac >= join_q[ji][0]:
            for _ in range(join_q[ji][1]):
                alive.add(next_rank)
                heapq.heappush(heap, (free_at, next_rank))
                next_rank += 1
            ji += 1
            # A joiner may now be the earliest-free executor: re-draw.
            heapq.heappush(heap, (free_at, r))
            while True:
                free_at, r = heapq.heappop(heap)
                if r in alive:
                    break
        finish = free_at + float(d)
        makespan = max(makespan, finish)
        heapq.heappush(heap, (finish, r))
    return makespan


def elastic_strong_scaling_sweep(
    model: JobModel,
    workload: WorkloadSpec,
    node_counts: "list[int] | None" = None,
    baseline_nodes: int = 100,
    churn_fraction: float = 0.2,
    leave_at: float = 0.25,
    join_at: float = 0.5,
    leases_per_gpu: int = 4,
) -> list[ScalingPoint]:
    """Strong scaling of the lease-stealing runtime under fleet churn.

    Every iteration's λ-grid is cut into ``leases_per_gpu`` equi-area
    leases per GPU; executors pull them via
    :func:`simulate_elastic_makespan` while ``churn_fraction`` of the
    fleet leaves at ``leave_at`` completed-lease fraction and the same
    number joins back at ``join_at`` — the ±20% mid-solve swap of the
    elastic benchmark.  Reduce/broadcast accounting rides a
    :class:`VirtualCluster` whose membership churns via
    :meth:`VirtualCluster.leave` / :meth:`VirtualCluster.join` in the
    same iteration.

    Efficiency is relative to the **static** sweep's baseline runtime
    (``T_static(baseline) * baseline / (T_elastic(N) * N)``), so the
    numbers are directly comparable with :func:`strong_scaling_sweep`:
    the gap between the two curves is the price of churn plus stealing
    granularity.
    """
    node_counts = node_counts or [100, 400, 700, 1000]
    if baseline_nodes not in node_counts:
        node_counts = sorted(set(node_counts) | {baseline_nodes})
    base_static = model.run(workload, baseline_nodes).total_s
    points = []
    for n in node_counts:
        runtime = _elastic_runtime(
            model, workload, n, churn_fraction, leave_at, join_at,
            leases_per_gpu,
        )
        points.append(
            ScalingPoint(
                n_nodes=n,
                runtime_s=runtime,
                efficiency=scaling_efficiency(
                    baseline_nodes, base_static, n, runtime
                ),
            )
        )
    return points


def _elastic_runtime(
    model: JobModel,
    workload: WorkloadSpec,
    n_nodes: int,
    churn_fraction: float,
    leave_at: float,
    join_at: float,
    leases_per_gpu: int,
) -> float:
    """One elastic job prediction: stolen leases + churned collectives."""
    n_exec = n_nodes * model.gpus_per_node
    schedule = equiarea_schedule(
        model.scheme, workload.g, n_exec * max(1, leases_per_gpu)
    )
    profiles = partition_profiles(schedule, model.memory)
    cluster = VirtualCluster(n_ranks=n_nodes, network=model.network)
    k_exec = max(1, round(n_exec * churn_fraction))
    k_nodes = max(1, round(n_nodes * churn_fraction))
    churned = False
    for n_t in model.iteration_model.tumor_samples_remaining(workload.n_tumor):
        t_words = words_for(n_t) if model.memory.bitsplice else workload.tumor_words
        lease_times = gpu_busy_times(
            schedule,
            t_words,
            workload.normal_words,
            model.memory,
            model.device,
            model.tuning,
            profiles=profiles,
        )
        if not churned:
            # The mid-solve ±churn_fraction swap hits the first iteration.
            makespan = simulate_elastic_makespan(
                lease_times, n_exec,
                leaves=((leave_at, k_exec),), joins=((join_at, k_exec),),
            )
            if n_nodes > k_nodes:
                cluster.leave(list(range(n_nodes - k_nodes, n_nodes)))
                cluster.join(k_nodes)
            churned = True
        else:
            makespan = simulate_elastic_makespan(lease_times, n_exec)
        # Work stealing keeps every surviving executor busy until the
        # pool drains, so each rank's compute time is the makespan.
        cluster.compute(np.full(cluster.n_ranks, makespan))
        cluster.reduce_to_root(COMBO_RECORD_BYTES)
        cluster.bcast_from_root(COMBO_RECORD_BYTES + t_words * 8)
        cluster.compute(np.full(cluster.n_ranks, model.host_iteration_s))
    return cluster.elapsed_s + model.setup_seconds(n_nodes)
