"""Fitting the iteration model from real solver runs.

The performance model's :class:`IterationModel` (iteration count and the
geometric cover fraction that drives BitSplicing's width schedule) is a
free parameter.  This module closes the loop: run the real algorithm at
reduced scale, extract the empirical cover trajectory, and fit the model
the paper-scale predictions should use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.solver import MultiHitResult
from repro.perfmodel.runtime import IterationModel

__all__ = ["IterationFit", "fit_iteration_model"]


@dataclass(frozen=True)
class IterationFit:
    """Fitted iteration model plus goodness diagnostics."""

    model: IterationModel
    empirical_fractions: tuple[float, ...]
    rmse: float

    @property
    def cover_fraction(self) -> float:
        return self.model.cover_fraction

    @property
    def n_iterations(self) -> int:
        return self.model.n_iterations


def fit_iteration_model(result: MultiHitResult) -> IterationFit:
    """Fit the geometric cover model to a solver run.

    The per-iteration cover fraction is ``newly_covered / remaining_before``;
    the geometric model uses their weighted mean (weighted by the samples
    at stake, so the big early iterations dominate — they also dominate
    runtime).  RMSE is reported against the empirical remaining-samples
    trajectory.
    """
    if not result.iterations:
        return IterationFit(
            model=IterationModel(n_iterations=1, cover_fraction=0.0),
            empirical_fractions=(),
            rmse=0.0,
        )
    fractions = np.array(
        [rec.newly_covered / rec.remaining_before for rec in result.iterations]
    )
    weights = np.array([rec.remaining_before for rec in result.iterations], dtype=float)
    cover = float(np.average(fractions, weights=weights))
    cover = min(max(cover, 1e-6), 1.0 - 1e-6)
    model = IterationModel(n_iterations=len(result.iterations), cover_fraction=cover)

    predicted = np.array(model.tumor_samples_remaining(result.params.n_tumor), dtype=float)
    empirical = np.array([rec.remaining_before for rec in result.iterations], dtype=float)
    rmse = float(np.sqrt(np.mean((predicted - empirical) ** 2)))
    return IterationFit(
        model=model,
        empirical_fractions=tuple(float(f) for f in fractions),
        rmse=rmse,
    )
