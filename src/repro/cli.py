"""Command-line interface.

Subcommands::

    multihit solve       # run the greedy solver on a synthetic cohort
    multihit serve       # multi-tenant async job gateway (HTTP API)
    multihit experiment  # regenerate a paper table/figure (fig2..fig10, ...)
    multihit catalog     # list the cancer-type catalog
    multihit schedule    # inspect ED/EA schedules for a configuration
    multihit trace       # causal-trace analysis (critical path, attribution)

Run ``multihit <subcommand> --help`` for options.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="multihit",
        description="Multi-hit carcinogenic gene-combination discovery (IPDPS'21 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="solve a synthetic cohort")
    p_solve.add_argument("--dataset", type=str, default=None,
                         help="named dataset from the registry (overrides --genes/...)")
    p_solve.add_argument("--genes", type=int, default=40)
    p_solve.add_argument("--tumor", type=int, default=120)
    p_solve.add_argument("--normal", type=int, default=120)
    p_solve.add_argument("--hits", type=int, default=3)
    p_solve.add_argument("--seed", type=int, default=0)
    p_solve.add_argument(
        "--backend",
        choices=["single", "pool", "distributed", "sequential"],
        default="single",
    )
    p_solve.add_argument("--nodes", type=int, default=2, help="distributed backend only")
    p_solve.add_argument(
        "--workers", type=int, default=2, help="pool backend: worker processes"
    )
    p_solve.add_argument(
        "--prune", action="store_true",
        help="lazy-greedy pruned iteration engine (bit-identical results, "
             "fewer combinations scored from iteration 2 on)",
    )
    p_solve.add_argument(
        "--prune-blocks", type=int, default=64, metavar="N",
        help="target λ-block count for the pruning bound table (default 64)",
    )
    p_solve.add_argument(
        "--elastic", action="store_true",
        help="lease-based work stealing instead of fixed partitions "
             "(pool/distributed backends; winners stay bit-identical, "
             "and membership churn — joins, leaves, dead ranks — is "
             "absorbed by survivors stealing the affected λ-leases)",
    )
    p_solve.add_argument(
        "--lease-blocks", type=int, default=0, metavar="N",
        help="λ-range leases per arg-max call with --elastic "
             "(default 0 = four per rank/worker)",
    )
    p_solve.add_argument(
        "--sparse", action=argparse.BooleanOptionalAction, default=True,
        help="sparsity-driven scoring path: nonzero-stride skipping, "
             "shared-prefix AND caching and zero-prefix run skipping "
             "(bit-identical winners; --no-sparse restores the dense "
             "traffic model)",
    )
    p_solve.add_argument(
        "--word-stride", type=int, default=64, metavar="W",
        help="fused-scan slice width in packed words "
             "(positive multiple of 8; default 64)",
    )
    p_solve.add_argument("--output", type=str, default=None, help="save result JSON")
    p_solve.add_argument(
        "--checkpoint", type=str, default=None, metavar="PATH",
        help="checkpoint file; if it already exists the run resumes from it",
    )
    p_solve.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="persist the checkpoint every N greedy iterations (default 1)",
    )
    p_solve.add_argument(
        "--trace-out", type=str, default=None, metavar="PATH",
        help="write a Chrome trace_event JSON (open in Perfetto); "
             "'.jsonl' suffix writes the JSONL event log instead",
    )
    p_solve.add_argument(
        "--metrics-out", type=str, default=None, metavar="PATH",
        help="write the run's metrics summary JSON",
    )
    p_solve.add_argument(
        "--no-telemetry", action="store_true",
        help="disable tracing/metrics collection entirely",
    )
    p_solve.add_argument(
        "--flight-recorder", type=str, default=None, metavar="DIR",
        help="attach the flight recorder; post-mortem black-box JSON dumps "
             "land in DIR on rank/worker failure or solver crash",
    )
    p_solve.add_argument(
        "--prom-port", type=int, default=None, metavar="PORT",
        help="serve Prometheus /metrics and /healthz on 127.0.0.1:PORT "
             "for the duration of the solve (0 picks a free port)",
    )
    p_solve.add_argument(
        "--progress", action="store_true",
        help="live single-line progress/ETA status on stderr",
    )
    p_solve.add_argument(
        "--quiet", action="store_true",
        help="suppress informational messages; the machine-readable result "
             "listing on stdout is unchanged",
    )

    p_serve = sub.add_parser(
        "serve", help="run the multi-tenant async job gateway"
    )
    p_serve.add_argument("--host", type=str, default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8757,
        help="HTTP port for /v1 + /metrics + /healthz (0 picks a free port)",
    )
    p_serve.add_argument(
        "--state-dir", type=str, default="gateway-state", metavar="DIR",
        help="job store + per-job checkpoints + flight dumps live here; "
             "restarting against the same DIR resumes interrupted jobs",
    )
    p_serve.add_argument(
        "--max-concurrent", type=int, default=2, metavar="N",
        help="supervisor threads = jobs solving at once (default 2)",
    )
    p_serve.add_argument(
        "--max-workers", type=int, default=8, metavar="N",
        help="fleet-wide worker budget the dispatch policies allocate from",
    )
    p_serve.add_argument(
        "--queue-depth", type=int, default=32, metavar="N",
        help="fleet-wide in-flight job bound; submissions past it get 429",
    )
    p_serve.add_argument(
        "--tenant-quota", type=int, default=8, metavar="N",
        help="per-tenant in-flight job bound (0 disables)",
    )
    p_serve.add_argument(
        "--policy", choices=["round_robin", "weighted_by_load", "cost_aware"],
        default="round_robin", help="dispatch policy (backend + worker budget)",
    )
    p_serve.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="per-job checkpoint cadence in greedy iterations (default 1)",
    )
    p_serve.add_argument(
        "--ready-file", type=str, default=None, metavar="PATH",
        help="write {url, port} JSON once listening (CI / scripts find "
             "the ephemeral port here)",
    )
    p_serve.add_argument(
        "--quiet", action="store_true",
        help="suppress informational messages on stderr",
    )

    p_exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p_exp.add_argument("name", help="experiment id ('list' to enumerate, 'all' to run every one)")
    p_exp.add_argument("--output", type=str, default=None, help="write the report to a file")

    sub.add_parser("catalog", help="list the 31-cancer catalog")

    p_sched = sub.add_parser("schedule", help="inspect a schedule")
    p_sched.add_argument("--genes", type=int, default=100)
    p_sched.add_argument("--gpus", type=int, default=12)
    p_sched.add_argument("--scheme", choices=["2x2", "3x1"], default="3x1")
    p_sched.add_argument(
        "--policy",
        choices=["equiarea", "equidistance", "costaware", "interleaved"],
        default="equiarea",
    )

    p_ds = sub.add_parser("dataset", help="generate / inspect cohort archives")
    ds_sub = p_ds.add_subparsers(dest="dataset_command", required=True)
    p_gen = ds_sub.add_parser("generate", help="generate a cohort .npz")
    p_gen.add_argument("path")
    p_gen.add_argument("--cancer", type=str, default=None, help="catalog abbreviation")
    p_gen.add_argument("--genes", type=int, default=48)
    p_gen.add_argument("--tumor", type=int, default=120)
    p_gen.add_argument("--normal", type=int, default=120)
    p_gen.add_argument("--hits", type=int, default=3)
    p_gen.add_argument("--seed", type=int, default=0)
    p_info = ds_sub.add_parser("info", help="describe a cohort .npz")
    p_info.add_argument("path")

    p_roof = sub.add_parser("roofline", help="roofline placement of kernel configs")
    p_roof.add_argument("--words", type=int, default=31, help="packed width (tumor+normal)")

    p_trace = sub.add_parser("trace", help="analyze exported causal traces")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_analyze = trace_sub.add_parser(
        "analyze",
        help="critical path + per-bucket time attribution of a trace",
    )
    p_analyze.add_argument("path", help="trace file (JSONL export or Chrome-trace-adjacent JSON)")
    p_analyze.add_argument(
        "--top", type=int, default=10,
        help="critical-path segments to show (default 10)",
    )
    p_analyze.add_argument(
        "--json", action="store_true",
        help="emit the full machine-readable report instead of the summary",
    )
    return parser


def _note(args: argparse.Namespace, message: str) -> None:
    """Informational output: stderr, silenced by ``--quiet``.

    The machine-readable result listing stays on stdout so piping
    ``multihit solve`` into a parser keeps working regardless of these.
    """
    if not getattr(args, "quiet", False):
        print(message, file=sys.stderr)


def _cmd_solve(args: argparse.Namespace) -> int:
    from contextlib import ExitStack

    from repro.telemetry import (
        FlightRecorder,
        MetricsServer,
        ProgressMonitor,
        telemetry_session,
    )

    with ExitStack() as stack:
        telemetry = stack.enter_context(
            telemetry_session(enabled=not args.no_telemetry)
        )
        if args.flight_recorder:
            telemetry.attach_flight(FlightRecorder(out_dir=args.flight_recorder))
            _note(args, f"flight recorder armed: {args.flight_recorder}")
        if args.prom_port is not None:
            server = stack.enter_context(
                MetricsServer(telemetry=telemetry, port=args.prom_port)
            )
            _note(args, f"metrics: {server.url}/metrics")
        if args.progress and not args.no_telemetry:
            stack.enter_context(
                ProgressMonitor(
                    telemetry=telemetry,
                    stream=None if args.quiet else sys.stderr,
                )
            )
        code = _run_solve(args, telemetry)
        if not args.no_telemetry:
            _export_telemetry(args, telemetry)
    return code


def _run_solve(args: argparse.Namespace, telemetry) -> int:
    from repro.core.solver import MultiHitSolver
    from repro.data.synthesis import CohortConfig, generate_cohort

    if args.dataset:
        from repro.data.registry import dataset

        cohort = dataset(args.dataset)
        hits = cohort.config.hits
    else:
        cohort = generate_cohort(
            CohortConfig(
                n_genes=args.genes,
                n_tumor=args.tumor,
                n_normal=args.normal,
                hits=args.hits,
                seed=args.seed,
            )
        )
        hits = args.hits
    solver = MultiHitSolver(
        hits=hits, backend=args.backend, n_nodes=args.nodes, n_workers=args.workers,
        prune=args.prune, prune_blocks=args.prune_blocks,
        elastic=args.elastic, lease_blocks=args.lease_blocks,
        sparse=args.sparse, word_stride=args.word_stride,
    )
    if args.checkpoint:
        from pathlib import Path

        from repro.core.checkpoint import solve_with_checkpoints

        if Path(args.checkpoint).exists():
            _note(args, f"resuming from checkpoint {args.checkpoint}")
        result = solve_with_checkpoints(
            solver,
            cohort.tumor.values,
            cohort.normal.values,
            args.checkpoint,
            every=args.checkpoint_every,
        )
    else:
        result = solver.solve(cohort.tumor.values, cohort.normal.values)
    print(
        f"solved {cohort.tumor.n_genes} genes / "
        f"{cohort.tumor.n_samples}+{cohort.normal.n_samples} samples: "
        f"{len(result.combinations)} combinations, coverage {result.coverage:.1%}"
    )
    planted = set(cohort.planted)
    for c in result.combinations:
        names = ",".join(cohort.tumor.gene_names[g] for g in c.genes)
        mark = " [planted]" if c.genes in planted else ""
        print(f"  F={c.f:.4f} TP={c.tp:4d} TN={c.tn:4d}  {names}{mark}")
    if args.output:
        from repro.io.results import save_result

        save_result(result, args.output)
        _note(args, f"result written to {args.output}")
    return 0


def _export_telemetry(args: argparse.Namespace, telemetry) -> None:
    from repro.telemetry import write_chrome_trace, write_jsonl, write_summary

    if args.trace_out:
        if args.trace_out.endswith(".jsonl"):
            write_jsonl(args.trace_out, telemetry)
        else:
            write_chrome_trace(args.trace_out, telemetry)
        _note(args, f"trace written to {args.trace_out}")
    if args.metrics_out:
        write_summary(
            args.metrics_out,
            name=f"solve-{args.backend}",
            telemetry=telemetry,
            extra={"backend": args.backend, "seed": args.seed},
        )
        _note(args, f"metrics summary written to {args.metrics_out}")


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.service import Gateway

    gateway = Gateway(
        state_dir=args.state_dir,
        host=args.host,
        port=args.port,
        max_concurrent=args.max_concurrent,
        max_workers=args.max_workers,
        queue_depth=args.queue_depth,
        tenant_quota=args.tenant_quota,
        policy=args.policy,
        checkpoint_every=args.checkpoint_every,
    )
    if gateway._recovered:
        _note(args, f"recovered {gateway._recovered} interrupted job(s)")
    stop = False

    def _handle(signum, frame) -> None:
        nonlocal stop
        stop = True

    signal.signal(signal.SIGINT, _handle)
    signal.signal(signal.SIGTERM, _handle)
    with gateway:
        _note(args, f"gateway listening on {gateway.url} "
                    f"(policy={args.policy}, state={args.state_dir})")
        if args.ready_file:
            import json as _json
            from pathlib import Path

            Path(args.ready_file).write_text(
                _json.dumps({"url": gateway.url, "port": gateway.port}) + "\n"
            )
        import time as _time

        while not stop:
            _time.sleep(0.2)
    _note(args, "gateway stopped (interrupted jobs resume on next start)")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import EXPERIMENTS

    if args.name == "list":
        for name, mod in EXPERIMENTS.items():
            doc = (mod.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:18s} {doc}")
        return 0
    if args.name == "all":
        from repro.experiments.runner import compose_report, run_all

        outcomes = run_all()
        text = compose_report(outcomes)
        if args.output:
            from pathlib import Path

            Path(args.output).write_text(text + "\n")
            print(f"report written to {args.output} "
                  f"({sum(o.ok for o in outcomes)}/{len(outcomes)} ok)")
        else:
            print(text)
        return 0 if all(o.ok for o in outcomes) else 1
    if args.name not in EXPERIMENTS:
        print(
            f"unknown experiment {args.name!r}; run 'multihit experiment list'",
            file=sys.stderr,
        )
        return 2
    mod = EXPERIMENTS[args.name]
    text = mod.report(mod.run())
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text + "\n")
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_catalog(_: argparse.Namespace) -> int:
    from repro.data.cancers import CANCER_CATALOG

    print("abbrev | tumor | normal |  genes | est. hits")
    for c in CANCER_CATALOG.values():
        print(
            f"{c.abbrev:6s} | {c.n_tumor:5d} | {c.n_normal:6d} | {c.n_genes:6d} | "
            f"{c.estimated_hits}{' (4+)' if c.four_hit else ''}"
        )
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro.scheduling import (
        SCHEME_2X2,
        SCHEME_3X1,
        costaware_schedule,
        equiarea_schedule,
        equidistance_schedule,
        interleaved_schedule,
    )

    scheme = SCHEME_3X1 if args.scheme == "3x1" else SCHEME_2X2
    if args.policy == "interleaved":
        il = interleaved_schedule(scheme, args.genes, args.gpus)
        work = il.work_per_part()
        print(
            f"Schedule[interleaved] scheme={scheme.name} G={args.genes} "
            f"parts={il.n_parts} blocks={il.n_blocks} "
            f"imbalance={il.imbalance():.4f}"
        )
        for p in range(il.n_parts):
            ranges = il.ranges(p)
            print(f"  gpu {p:3d}: {len(ranges)} blocks  work {work[p]}")
        return 0
    build = {
        "equiarea": equiarea_schedule,
        "equidistance": equidistance_schedule,
        "costaware": costaware_schedule,
    }[args.policy]
    schedule = build(scheme, args.genes, args.gpus)
    print(schedule.describe())
    work = schedule.work_per_part()
    for p in range(schedule.n_parts):
        lo, hi = schedule.thread_range(p)
        print(f"  gpu {p:3d}: threads [{lo}, {hi})  work {work[p]}")
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    from repro.data import (
        CohortConfig,
        cancer,
        generate_cohort,
        load_cohort,
        save_cohort,
    )

    if args.dataset_command == "generate":
        if args.cancer:
            cohort = generate_cohort(
                cancer=cancer(args.cancer),
                n_genes=args.genes,
                hits=args.hits,
                seed=args.seed,
            )
        else:
            cohort = generate_cohort(
                CohortConfig(
                    n_genes=args.genes,
                    n_tumor=args.tumor,
                    n_normal=args.normal,
                    hits=args.hits,
                    seed=args.seed,
                )
            )
        save_cohort(cohort, args.path)
        print(
            f"wrote {args.path}: {cohort.tumor.n_genes} genes, "
            f"{cohort.tumor.n_samples}+{cohort.normal.n_samples} samples, "
            f"{len(cohort.planted)} planted {cohort.config.hits}-hit combos"
        )
        return 0
    cohort = load_cohort(args.path)
    print(
        f"{args.path}: {cohort.tumor.n_genes} genes, "
        f"{cohort.tumor.n_samples} tumor / {cohort.normal.n_samples} normal samples"
    )
    print(f"  config: {cohort.config}")
    print(f"  planted: {cohort.planted_names}")
    return 0


def _cmd_roofline(args: argparse.Namespace) -> int:
    from repro.core.memopt import MemoryConfig
    from repro.perfmodel.roofline import operating_point, ridge_intensity
    from repro.scheduling.schemes import SCHEME_2X2, SCHEME_3X1

    print(f"V100 ridge intensity: {ridge_intensity():.2f} ops/byte")
    print("configuration                          | ops/combo | B/combo | intensity | bound")
    for scheme in (SCHEME_3X1, SCHEME_2X2):
        for mem in (MemoryConfig(False, False, False), MemoryConfig()):
            p = operating_point(scheme, args.words, memory=mem)
            bound = "compute" if p.compute_bound else "memory"
            print(
                f"{p.label:38s} | {p.ops_per_combo:9.0f} | "
                f"{p.dram_bytes_per_combo:7.2f} | {p.intensity:9.1f} | {bound}"
            )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.telemetry.critpath import analyze_trace, format_report, load_trace

    try:
        spans = load_trace(args.path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: cannot load trace {args.path}: {exc}", file=sys.stderr)
        return 2
    if not spans:
        print(f"error: no spans in {args.path}", file=sys.stderr)
        return 2
    report = analyze_trace(spans, top=args.top)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_report(report, top=args.top))
    return 0


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "solve": _cmd_solve,
        "serve": _cmd_serve,
        "experiment": _cmd_experiment,
        "catalog": _cmd_catalog,
        "schedule": _cmd_schedule,
        "dataset": _cmd_dataset,
        "roofline": _cmd_roofline,
        "trace": _cmd_trace,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
