"""Perf-regression gating over the ``BENCH_*.json`` trajectory.

The repo-root benchmark summaries (``BENCH_fig4.json``,
``BENCH_greedy.json``) are the machine-readable perf trajectory: each PR
overwrites them, committed snapshots show how headline numbers move.
This module turns that trajectory into a *gate*: compare a current
summary against a committed baseline with per-metric tolerance bands and
fail (CI) when wall time grows, combinations-scored regresses, or
scaling efficiency drops beyond the band.

A check names a metric by dotted path into the summary JSON (integer
segments index lists, so ``extra.strong_runtime_s.-1`` is the
1000-node runtime) and a direction: for ``higher_is_worse`` metrics the
band is ``current <= baseline * (1 + tolerance)``; for
``lower_is_worse`` it is ``current >= baseline * (1 - tolerance)``.
Deterministic counters get tight bands; wall-clock metrics get wide
ones (they gate the synthetic 2x regression, not machine jitter).

``benchmarks/check_regression.py`` is the CLI wrapper CI runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "DEFAULT_CHECKS",
    "Regression",
    "RegressionCheck",
    "check_files",
    "compare_summaries",
    "resolve_path",
]


@dataclass(frozen=True)
class RegressionCheck:
    """One gated metric.

    ``tolerance`` is the fractional band around the baseline;
    ``wall_clock`` marks timing-derived metrics so cross-machine
    comparisons can skip them (``--skip-wall``) while still gating the
    deterministic counters.
    """

    metric: str  # dotted path into the summary JSON
    higher_is_worse: bool = True
    tolerance: float = 0.10
    wall_clock: bool = False

    def __post_init__(self) -> None:
        if self.tolerance < 0:
            raise ValueError("tolerance must be >= 0")


@dataclass(frozen=True)
class Regression:
    """A metric outside its tolerance band."""

    name: str  # summary name (greedy, fig4, ...)
    metric: str
    baseline: float
    current: float
    allowed: float  # the bound current violated
    higher_is_worse: bool

    def describe(self) -> str:
        direction = "<=" if self.higher_is_worse else ">="
        return (
            f"{self.name}:{self.metric} = {self.current:g} "
            f"(baseline {self.baseline:g}, allowed {direction} {self.allowed:g})"
        )


#: Gated metrics per benchmark summary name.  Wall-clock checks carry a
#: wide band (a 2x regression trips them, machine jitter does not);
#: counter and efficiency checks are tight because they are
#: deterministic for a fixed seed.
DEFAULT_CHECKS: dict[str, tuple[RegressionCheck, ...]] = {
    "greedy": (
        RegressionCheck("extra.combos_scored_pruned", tolerance=0.05),
        RegressionCheck("extra.word_reads_pruned", tolerance=0.05),
        RegressionCheck(
            "extra.combos_reduction_from_iter2",
            higher_is_worse=False,
            tolerance=0.20,
        ),
        RegressionCheck(
            "extra.wall_seconds_pruned", tolerance=0.75, wall_clock=True
        ),
    ),
    "fig4": (
        RegressionCheck(
            "extra.strong_at_max_nodes", higher_is_worse=False, tolerance=0.03
        ),
        RegressionCheck(
            "extra.strong_avg_efficiency", higher_is_worse=False, tolerance=0.03
        ),
        # Model-predicted seconds: deterministic, but still a "time" in
        # spirit — gate the 1000-node headline with a moderate band.
        RegressionCheck(
            "extra.strong_runtime_s.-1", tolerance=0.25, wall_clock=True
        ),
        # Elastic strong scaling under ±20% mid-solve churn: the lease-
        # stealing fleet must keep its 1000-node efficiency.
        RegressionCheck(
            "extra.elastic_at_max_nodes", higher_is_worse=False, tolerance=0.03
        ),
        RegressionCheck(
            "extra.elastic_runtime_s.-1", tolerance=0.25, wall_clock=True
        ),
    ),
    "kernels": (
        # Sparse kernel path vs the planted <=5%-density instance: the
        # scored-combo count is sparse-invariant (exact gate both ways),
        # word reads are deterministic for the fixed seed (tight band),
        # and the headline reduction vs the fused model must hold.
        RegressionCheck("extra.combos_scored", tolerance=0.0),
        RegressionCheck(
            "extra.combos_scored", higher_is_worse=False, tolerance=0.0
        ),
        RegressionCheck("extra.word_reads_sparse", tolerance=0.02),
        RegressionCheck(
            "extra.reduction_vs_fused", higher_is_worse=False, tolerance=0.05
        ),
        RegressionCheck(
            "extra.wall_seconds_sparse", tolerance=0.75, wall_clock=True
        ),
    ),
    "elastic": (
        # Churned elastic solve vs static reference: the winner must be
        # bit-identical (an exact gate, tolerance 0) and the counters
        # must close; lease traffic is deterministic for a fixed plan.
        RegressionCheck(
            "extra.bit_identical", higher_is_worse=False, tolerance=0.0
        ),
        RegressionCheck("extra.combos_scored", tolerance=0.0),
        RegressionCheck(
            "extra.combos_scored", higher_is_worse=False, tolerance=0.0
        ),
        RegressionCheck("extra.lease_grants", tolerance=0.25),
        RegressionCheck(
            "extra.wall_seconds_elastic", tolerance=0.75, wall_clock=True
        ),
    ),
    "trace": (
        # Causal-trace attribution on the straggler+steal scenario: the
        # winner must be bit-identical with tracing on (exact gate), the
        # analyzer must keep naming comm-wait as the dominant loss
        # (exact gate), and the critical path must keep tiling the
        # window with buckets closing against total rank-seconds.
        RegressionCheck(
            "extra.bit_identical", higher_is_worse=False, tolerance=0.0
        ),
        RegressionCheck(
            "extra.comm_wait_dominant", higher_is_worse=False, tolerance=0.0
        ),
        RegressionCheck(
            "extra.coverage", higher_is_worse=False, tolerance=0.05
        ),
        RegressionCheck(
            "extra.closure", higher_is_worse=False, tolerance=0.02
        ),
        RegressionCheck("extra.closure", tolerance=0.02),
        RegressionCheck(
            "extra.analyze_wall_s", tolerance=0.75, wall_clock=True
        ),
    ),
}


def resolve_path(summary: dict, dotted: str):
    """Walk a dotted path; integer segments index into lists."""
    node = summary
    for seg in dotted.split("."):
        if isinstance(node, list):
            node = node[int(seg)]
        elif isinstance(node, dict):
            if seg not in node:
                raise KeyError(f"{dotted!r}: missing segment {seg!r}")
            node = node[seg]
        else:
            raise KeyError(f"{dotted!r}: cannot descend into {type(node).__name__}")
    return node


def compare_summaries(
    name: str,
    current: dict,
    baseline: dict,
    checks: "tuple[RegressionCheck, ...] | None" = None,
    skip_wall: bool = False,
) -> "list[Regression]":
    """Every checked metric of ``current`` outside its band vs ``baseline``.

    A metric missing from the *baseline* is skipped (older snapshots
    predate it); missing from *current* is a regression in itself — the
    benchmark stopped reporting a gated number.
    """
    if checks is None:
        checks = DEFAULT_CHECKS.get(name, ())
    regressions: list[Regression] = []
    for check in checks:
        if skip_wall and check.wall_clock:
            continue
        try:
            base = float(resolve_path(baseline, check.metric))
        except (KeyError, IndexError, TypeError, ValueError):
            continue
        try:
            cur = float(resolve_path(current, check.metric))
        except (KeyError, IndexError, TypeError, ValueError):
            cur = float("inf") if check.higher_is_worse else float("-inf")
        if check.higher_is_worse:
            allowed = base * (1.0 + check.tolerance)
            bad = cur > allowed
        else:
            allowed = base * (1.0 - check.tolerance)
            bad = cur < allowed
        if bad:
            regressions.append(
                Regression(
                    name=name,
                    metric=check.metric,
                    baseline=base,
                    current=cur,
                    allowed=allowed,
                    higher_is_worse=check.higher_is_worse,
                )
            )
    return regressions


def check_files(
    pairs: "list[tuple[str, Path, Path]]", skip_wall: bool = False
) -> "tuple[list[Regression], list[str]]":
    """Compare (name, current_path, baseline_path) files.

    Returns ``(regressions, notes)`` where notes describe skipped pairs
    (missing files) — the CLI prints them and treats missing *current*
    files as failures.
    """
    regressions: list[Regression] = []
    notes: list[str] = []
    for name, current_path, baseline_path in pairs:
        if not Path(baseline_path).exists():
            notes.append(f"{name}: no baseline at {baseline_path} (skipped)")
            continue
        if not Path(current_path).exists():
            notes.append(f"{name}: MISSING current summary {current_path}")
            regressions.append(
                Regression(
                    name=name,
                    metric="<file>",
                    baseline=1.0,
                    current=0.0,
                    allowed=1.0,
                    higher_is_worse=False,
                )
            )
            continue
        current = json.loads(Path(current_path).read_text())
        baseline = json.loads(Path(baseline_path).read_text())
        regressions.extend(
            compare_summaries(name, current, baseline, skip_wall=skip_wall)
        )
    return regressions, notes
