"""The telemetry session: one tracer + one metrics registry per run.

Instrumented layers (solver, pool, distributed engine, SimComm, SPMD
runner, gpusim, checkpoints) call :func:`get_telemetry` and talk to
whatever session is installed.  The default is :data:`NULL_TELEMETRY`, a
permanently disabled session whose ``span``/``count`` calls are no-ops
(``span`` returns the shared no-op singleton, so the hot path allocates
nothing), which is what keeps telemetry-off runs at baseline speed.

Install a live session for the duration of a run with::

    from repro.telemetry import telemetry_session

    with telemetry_session() as tel:
        result = MultiHitSolver(...).solve(tumor, normal)
    write_chrome_trace("trace.json", tel)

``timed_span`` is the replacement for hand-rolled ``perf_counter``
bookkeeping: it *always* measures wall time (so public timing fields
stay populated with telemetry off) but records a span only when enabled.

Sessions resolve **thread-first**: :func:`set_thread_telemetry` installs
a session that only the calling thread (and threads that explicitly
inherit it — the SPMD rank runners do) sees, falling back to the
process-global session installed by :func:`set_telemetry`.  This is what
lets the multi-tenant gateway (:mod:`repro.service`) run many solves
concurrently in one process, each with its own isolated span timeline
and metrics registry, while ``/metrics`` keeps scraping the gateway-wide
global session.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import NOOP_SPAN, Stopwatch, Tracer

__all__ = [
    "NULL_TELEMETRY",
    "Telemetry",
    "get_telemetry",
    "set_telemetry",
    "set_thread_telemetry",
    "telemetry_session",
    "thread_telemetry_session",
]


class Telemetry:
    """A tracer/metrics pair with enabled-aware convenience methods."""

    def __init__(self, enabled: bool = True, trace_id: "str | None" = None) -> None:
        self.enabled = enabled
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        # One causal-trace identity per enabled session (a solve or a
        # gateway job); disabled sessions mint nothing — the no-op path
        # stays allocation-free and context() returns None.
        if enabled:
            if trace_id is None:
                from repro.telemetry.causal import new_trace_id

                trace_id = new_trace_id()
            self.trace_id: "str | None" = trace_id
            self.tracer.trace_id = trace_id
        else:
            self.trace_id = None
        # Live layer (PR-5), attached per run: a FlightRecorder gets the
        # span-close feed and receives post-mortem dump triggers from
        # the engines.  None (the default) costs one attribute check at
        # fault sites and nothing on the span path.
        self.flight = None

    def attach_flight(self, recorder) -> "Telemetry":
        """Install a :class:`repro.telemetry.flight.FlightRecorder`.

        The recorder subscribes to span closes (including spans absorbed
        from pool workers); engines consult ``telemetry.flight`` at
        their failure-detection sites to dump the black box.
        """
        self.flight = recorder
        self.tracer.listener = None if recorder is None else recorder.record_span
        return self

    # -- spans ---------------------------------------------------------

    def span(self, name: str, cat: str = "repro", rank: "int | None" = None, **attrs):
        """A recording span when enabled, the shared no-op otherwise."""
        if not self.enabled:
            return NOOP_SPAN
        return self.tracer.span(name, cat=cat, rank=rank, **attrs)

    def timed_span(
        self, name: str, cat: str = "repro", rank: "int | None" = None, **attrs
    ):
        """A span that always measures ``duration_s``, recorded only when on."""
        if not self.enabled:
            return Stopwatch()
        return self.tracer.span(name, cat=cat, rank=rank, **attrs)

    # -- metrics -------------------------------------------------------

    def count(self, name: str, value: int = 1) -> None:
        if self.enabled:
            self.metrics.inc(name, value)

    def observe(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.observe(name, value)

    def set_gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.set_gauge(name, value)

    def clear_gauges(self, prefix: str) -> int:
        if self.enabled:
            return self.metrics.clear_gauges(prefix)
        return 0

    # -- causal context ------------------------------------------------

    def context(self) -> "dict | None":
        """The calling thread's current span context (``None`` when off).

        See :mod:`repro.telemetry.causal` for the context shape and the
        edge vocabulary recorded against it.
        """
        if not self.enabled:
            return None
        return self.tracer.context()

    def adopt_context(self, ctx: "dict | None") -> "Telemetry":
        """Join the trace ``ctx`` belongs to (worker-side re-rooting).

        Pool workers and rank runners that build a fresh session call
        this with the dispatching context shipped to them: the session
        takes over the trace id and records a ``dispatch`` link from
        every stack-root span to the dispatching span.  A ``None``
        context (disabled parent) is a no-op.
        """
        if not self.enabled or not ctx:
            return self
        trace = ctx.get("trace")
        if trace:
            self.trace_id = trace
            self.tracer.trace_id = trace
        self.tracer.remote_parent = {"pid": ctx["pid"], "id": ctx["id"]}
        return self

    # -- cross-process state -------------------------------------------

    def export_state(self) -> dict:
        """Snapshot spans + metrics for shipping to another process."""
        return {"spans": self.tracer.export(), "metrics": self.metrics.to_dict()}

    def absorb_state(self, state: "dict | None") -> None:
        """Merge a worker/rank ``export_state`` snapshot into this session."""
        if not self.enabled or not state:
            return
        self.tracer.absorb(state.get("spans", []))
        self.metrics.merge_dict(state.get("metrics", {}))


NULL_TELEMETRY = Telemetry(enabled=False)

_current: Telemetry = NULL_TELEMETRY
_thread_local = threading.local()


def get_telemetry() -> Telemetry:
    """The session instrumented code reports to (never ``None``).

    A thread-scoped session (see :func:`set_thread_telemetry`) shadows
    the process-global one; with none installed the global applies.
    """
    override = getattr(_thread_local, "session", None)
    if override is not None:
        return override
    return _current


def set_telemetry(telemetry: "Telemetry | None") -> Telemetry:
    """Install the process-global session; returns the previous one."""
    global _current
    previous = _current
    _current = telemetry if telemetry is not None else NULL_TELEMETRY
    return previous


def set_thread_telemetry(telemetry: "Telemetry | None") -> "Telemetry | None":
    """Install a session visible only to the calling thread.

    ``None`` clears the override (falling back to the global session).
    Returns the previous thread override, which is ``None`` unless the
    thread had one.  Worker threads spawned *inside* an overridden
    thread do not inherit automatically — spawners that must keep their
    spans on the right timeline (the SPMD rank runners) capture the
    parent's session and re-install it in the child.
    """
    previous = getattr(_thread_local, "session", None)
    _thread_local.session = telemetry
    return previous


@contextmanager
def telemetry_session(enabled: bool = True):
    """Install a fresh process-global session for a ``with`` block."""
    telemetry = Telemetry(enabled=enabled)
    previous = set_telemetry(telemetry)
    try:
        yield telemetry
    finally:
        set_telemetry(previous)


@contextmanager
def thread_telemetry_session(telemetry: "Telemetry | None" = None, enabled: bool = True):
    """Install a session for this thread only, for a ``with`` block.

    The gateway's job runner wraps each job's solve in one of these so
    concurrent jobs accumulate spans and metrics into their own
    registries instead of each other's (or the gateway's).
    """
    if telemetry is None:
        telemetry = Telemetry(enabled=enabled)
    previous = set_thread_telemetry(telemetry)
    try:
        yield telemetry
    finally:
        set_thread_telemetry(previous)
