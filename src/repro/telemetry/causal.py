"""Causal context propagation across async boundaries.

Spans carry a within-thread ``parent_id`` resolved from the open-span
stack — enough to reconstruct call trees, useless for answering "what
made this rank wait?".  This module defines the *context* that crosses
every async boundary in the repo and the edge vocabulary recorded on the
receiving side:

==============  ====================================================
edge ``kind``   boundary
==============  ====================================================
``message``     SimComm ``send`` → ``recv`` (point-to-point and every
                collective built on it): the sender's open span rides
                inside the mailbox envelope; ``recv`` links to it.
``dispatch``    parent → pool worker / spawned rank: the dispatching
                span context ships on the ``_ChunkTask`` (or is
                installed as the tracer's ``remote_parent``) and the
                worker's root span re-roots to it.
``grant``       ``LeaseLedger.acquire`` → the search span that works
                the lease: the granting context recorded on the lease.
``steal``       previous holder → thief: when a lease is re-granted
                after expiry/forfeit, the context captured at the
                moment the previous grant was revoked is linked from
                the thief's search span.
``complete``    ``LeaseLedger.complete`` → merge: each completion's
                context is linked from the reduce span so the critical
                path can thread through the slowest lease chain.
``request``     gateway job submission → the job's solve: the job's
                ``trace_id`` minted at submit is adopted by the
                runner's per-job session.
``retry``       failed attempt → its retry/reschedule span.
==============  ====================================================

A context is a plain dict ``{"trace": str|None, "pid": int, "id": int}``
(JSON- and pickle-friendly; see ``Tracer.context()``).  Every helper
here treats ``None`` as "telemetry disabled": contexts are only minted
by enabled sessions, ``Span.link(None)`` is a no-op, and the disabled
path still allocates nothing — solver results stay bit-identical with
tracing on or off because contexts never influence scheduling, only
what gets recorded about it.
"""

from __future__ import annotations

import uuid

from repro.telemetry.spans import NOOP_SPAN  # noqa: F401  (re-export convenience)

__all__ = [
    "KIND_COMPLETE",
    "KIND_DISPATCH",
    "KIND_GRANT",
    "KIND_MESSAGE",
    "KIND_REQUEST",
    "KIND_RETRY",
    "KIND_STEAL",
    "context_key",
    "current_context",
    "new_trace_id",
]

KIND_MESSAGE = "message"
KIND_DISPATCH = "dispatch"
KIND_GRANT = "grant"
KIND_STEAL = "steal"
KIND_COMPLETE = "complete"
KIND_REQUEST = "request"
KIND_RETRY = "retry"


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (one per solve/job)."""
    return uuid.uuid4().hex[:16]


def current_context(telemetry=None) -> "dict | None":
    """The active session's current span context, or ``None``.

    ``None`` comes back when telemetry is disabled or no span is open —
    callers ship it anyway and the receiving ``Span.link`` drops it, so
    no call site needs an enabled/disabled branch.
    """
    if telemetry is None:
        from repro.telemetry.session import get_telemetry

        telemetry = get_telemetry()
    return telemetry.context()


def context_key(ctx: "dict | None") -> "tuple | None":
    """The ``(pid, span_id)`` key a context (or link) points at."""
    if not ctx:
        return None
    return (ctx["pid"], ctx["id"])
