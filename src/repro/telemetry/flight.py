"""Flight recorder: a bounded in-memory timeline + post-mortem black box.

Long solves die in ways post-hoc exporters cannot see: a rank crashes
mid-iteration, the pool degrades, the solver raises — and the spans and
metrics accumulated so far vanish with the process (or are never
exported because ``write_*`` only runs on the happy path).  The
:class:`FlightRecorder` is the operational answer: a thread-safe ring
buffer that retains the most recent N span-close events, fault events,
and metric snapshots per process, plus the *active λ-range assignments*
of whatever engine is currently searching.

On any detected failure — :class:`repro.cluster.runtime.RankFailedError`,
:class:`repro.cluster.comm.CommAbortedError` surfacing as a world abort,
a :class:`repro.core.pool.PoolDegradedWarning`-grade chunk loss, a
device crash in the gpusim executor, or an unhandled solver exception —
the instrumented layers call :meth:`FlightRecorder.dump`, which writes a
post-mortem JSON "black box" (recent timeline + metrics registry
snapshot + :class:`repro.faults.FaultReport` + active assignments)
through the same atomic tmp + fsync + ``os.replace`` discipline as
checkpoints.  Dumps are sequence-numbered, so a cascade (rank failure →
restart → second failure) leaves one readable file per event.

Attach a recorder to a live session with
:meth:`repro.telemetry.Telemetry.attach_flight`; it subscribes to the
tracer's span-close feed (including spans absorbed from pool workers)
and to the fault report's live routing.  A session without a recorder
pays one ``None`` check per fault event and nothing per span.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path

__all__ = ["FLIGHT_SCHEMA", "FlightRecorder"]

FLIGHT_SCHEMA = "repro.telemetry.flight/v1"


class FlightRecorder:
    """Bounded ring buffer of recent telemetry events + black-box dumps.

    Parameters
    ----------
    out_dir:
        Directory black-box dumps are written into (created on demand).
    capacity:
        Events retained (oldest evicted first).  Spans, fault events,
        metric snapshots and notes share the one ring — a post-mortem
        wants the most recent *timeline*, not per-type quotas.
    max_dumps:
        Hard cap on black-box files written by this recorder; a
        fault storm cannot fill the disk.
    tag:
        Optional namespace woven into every dump filename
        (``blackbox-<tag>-NNN-<reason>.json``).  Concurrent solves
        sharing one dump directory (the gateway's per-job recorders,
        tagged with the job id) can never clobber each other's
        artifacts.

    The dump filename carries only the tag/sequence/reason; the causal
    identity lives *inside* the payload as ``trace_id`` (stamped from
    the session that dumped, when tracing is on).  Joining a black box
    against its trace is therefore ``payload["trace_id"]`` ==
    ``span["trace"]`` — the filename never needs re-parsing.
    """

    def __init__(
        self,
        out_dir: "str | Path" = "flight-recorder",
        capacity: int = 512,
        max_dumps: int = 16,
        tag: str = "",
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.out_dir = Path(out_dir)
        self.capacity = capacity
        self.max_dumps = max_dumps
        self.tag = _slug(tag) if tag else ""
        self.dumps: list[Path] = []
        self._events: deque = deque(maxlen=capacity)
        self._assignments: dict[str, list] = {}
        self._lock = threading.Lock()
        self._seq = 0

    # -- live feeds ----------------------------------------------------

    def _append(self, event: dict) -> None:
        event["t_wall"] = time.time()
        with self._lock:
            event["seq"] = self._seq
            self._seq += 1
            self._events.append(event)

    def record_span(self, span: dict) -> None:
        """Span-close feed (installed as the tracer's listener)."""
        self._append({"type": "span", **span})

    def record_fault(
        self, kind: str, site: str, target: int, call: int, action: str,
        detail: str = "", trace_id: "str | None" = None,
    ) -> None:
        """Fault feed (routed live from :class:`repro.faults.FaultReport`)."""
        event = {
            "type": "fault",
            "kind": kind,
            "site": site,
            "target": target,
            "call": call,
            "action": action,
            "detail": detail,
        }
        if trace_id is not None:
            event["trace_id"] = trace_id
        self._append(event)

    def record_metrics(self, registry) -> None:
        """Retain a point-in-time metrics snapshot on the timeline."""
        self._append({"type": "metrics", "snapshot": registry.to_dict()})

    def note(self, kind: str, **fields) -> None:
        """Free-form operational event (world restarts, reschedules...)."""
        self._append({"type": "note", "kind": kind, **fields})

    def set_assignments(self, site: str, assignments: "list[dict]") -> None:
        """Publish the λ-ranges ``site`` is currently searching.

        Overwritten per arg-max call; the black box shows what every
        executor *was working on* when the run died, which is the first
        question a stuck-job post-mortem asks.
        """
        with self._lock:
            self._assignments[site] = list(assignments)

    # -- inspection ----------------------------------------------------

    def timeline(self) -> "list[dict]":
        """The retained events, oldest first."""
        with self._lock:
            return [dict(e) for e in self._events]

    def assignments(self) -> "dict[str, list]":
        with self._lock:
            return {site: list(rows) for site, rows in self._assignments.items()}

    # -- the black box -------------------------------------------------

    def snapshot(
        self,
        reason: str,
        exc: "BaseException | None" = None,
        telemetry=None,
        fault_report=None,
    ) -> dict:
        """Assemble the post-mortem payload (what :meth:`dump` writes)."""
        payload = {
            "schema": FLIGHT_SCHEMA,
            "reason": reason,
            "wall_time": time.time(),
            "timeline": self.timeline(),
            "assignments": self.assignments(),
        }
        if self.tag:
            payload["tag"] = self.tag
        trace_id = getattr(telemetry, "trace_id", None)
        if trace_id is not None:
            payload["trace_id"] = trace_id
        if exc is not None:
            payload["exception"] = {
                "type": type(exc).__name__,
                "message": str(exc),
            }
            failed = getattr(exc, "failed_ranks", None)
            if failed is not None:
                payload["exception"]["failed_ranks"] = list(failed)
        if telemetry is not None:
            payload["metrics"] = telemetry.metrics.to_dict()
        if fault_report is not None:
            payload["fault_report"] = {
                "n_detected": fault_report.n_detected,
                "n_retries": fault_report.n_retries,
                "n_rescheduled": fault_report.n_rescheduled,
                "dead_ranks": list(fault_report.dead_ranks),
                "events": [
                    {
                        "kind": e.kind,
                        "site": e.site,
                        "target": e.target,
                        "call": e.call,
                        "action": e.action,
                        "attempt": e.attempt,
                        "detail": e.detail,
                        "trace_id": e.trace_id,
                    }
                    for e in fault_report.events
                ],
                "rescheduled": [
                    {
                        "dead_rank": r.dead_rank,
                        "survivor": r.survivor,
                        "lam_start": r.lam_start,
                        "lam_end": r.lam_end,
                        "call": r.call,
                    }
                    for r in fault_report.rescheduled
                ],
            }
        return payload

    def dump(
        self,
        reason: str,
        exc: "BaseException | None" = None,
        telemetry=None,
        fault_report=None,
    ) -> "Path | None":
        """Write a black-box JSON; returns its path (``None`` if capped).

        Atomic (tmp + fsync + ``os.replace`` via the exporter helper):
        the dump is written *because* something is going wrong, so a
        half-written post-mortem would be worse than none.
        """
        from repro.telemetry.export import atomic_write_text

        with self._lock:
            if len(self.dumps) >= self.max_dumps:
                return None
            n = len(self.dumps)
            stem = f"blackbox-{self.tag}-" if self.tag else "blackbox-"
            path = self.out_dir / f"{stem}{n:03d}-{_slug(reason)}.json"
            self.dumps.append(path)
        payload = self.snapshot(
            reason, exc=exc, telemetry=telemetry, fault_report=fault_report
        )
        atomic_write_text(path, json.dumps(payload, indent=2) + "\n")
        if telemetry is not None and telemetry.enabled:
            telemetry.count("flight.dumps")
        return path


def _slug(reason: str) -> str:
    keep = [c if c.isalnum() else "-" for c in reason.lower()]
    return "".join(keep).strip("-") or "event"
