"""Nested, thread/rank-aware tracing spans.

A :class:`Tracer` produces :class:`Span` context managers.  Spans nest
per thread (a per-thread open-span stack supplies the parent id), carry
the producing process id and thread id, and optionally an SPMD/MPI rank.
Timestamps are ``time.perf_counter_ns()`` readings — on Linux this is
``CLOCK_MONOTONIC``, which is shared across processes on one machine, so
spans shipped from pool workers back to the parent land on the same
timeline.

The disabled path allocates nothing: a disabled telemetry session hands
out the shared :data:`NOOP_SPAN` singleton, whose ``__enter__``/
``__exit__`` are empty.  Code that needs a duration even when tracing is
off (the solver's public ``wall_seconds`` field) uses
:class:`Stopwatch` — the same two-clock-read cost the bare
``time.perf_counter()`` bookkeeping it replaced had.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field

__all__ = ["NOOP_SPAN", "Span", "Stopwatch", "Tracer"]


class _NoopSpan:
    """Shared do-nothing span: the zero-allocation disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def link(self, ctx, kind: str = "causal") -> "_NoopSpan":
        return self

    @property
    def duration_s(self) -> float:
        return 0.0


NOOP_SPAN = _NoopSpan()


class Stopwatch:
    """Duration-only measurement: what a disabled ``timed_span`` returns.

    Costs exactly the two ``perf_counter_ns`` reads the hand-rolled
    ``t0 = time.perf_counter(); dt = time.perf_counter() - t0`` pattern
    cost, and records nothing anywhere.
    """

    __slots__ = ("start_ns", "end_ns")

    def __init__(self) -> None:
        self.start_ns = 0
        self.end_ns = 0

    def __enter__(self) -> "Stopwatch":
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> bool:
        self.end_ns = time.perf_counter_ns()
        return False

    def set(self, **attrs) -> "Stopwatch":
        return self

    def link(self, ctx, kind: str = "causal") -> "Stopwatch":
        return self

    @property
    def duration_s(self) -> float:
        return (self.end_ns - self.start_ns) / 1e9


@dataclass
class Span:
    """One traced interval; a context manager handed out by a Tracer.

    ``parent_id`` is resolved at ``__enter__`` from the producing
    thread's open-span stack; ``rank`` is inherited from the enclosing
    span when not given explicitly.  Span ids are unique within one
    *process* (drawn from a process-wide counter, so a worker that
    builds a fresh short-lived tracer per chunk never reuses an id);
    merged cross-process spans are distinguished by ``(pid, span_id)``.

    ``trace_id`` is stamped from the tracer at ``__enter__`` and ties
    every span of one solve/job together even after cross-process
    absorption.  ``links`` holds *causal* edges to spans that happened
    before this one on another thread, rank, or process — each link is
    ``{"pid": int, "id": int, "kind": str}`` referencing the causing
    span by its ``(pid, span_id)`` key.  Links are what lets the
    critical-path extractor chain across async boundaries where the
    within-thread ``parent_id`` cannot reach.
    """

    name: str
    cat: str
    span_id: int
    pid: int
    tid: int = 0
    parent_id: "int | None" = None
    rank: "int | None" = None
    start_ns: int = 0
    end_ns: int = 0
    attrs: dict = field(default_factory=dict)
    trace_id: "str | None" = None
    links: "list | None" = None
    _tracer: "Tracer | None" = field(default=None, repr=False, compare=False)

    @property
    def duration_s(self) -> float:
        return max(0, self.end_ns - self.start_ns) / 1e9

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def link(self, ctx: "dict | None", kind: str = "causal") -> "Span":
        """Record a causal edge from the span identified by ``ctx``.

        ``ctx`` is a context dict as produced by ``Tracer.context()``
        (``{"trace": ..., "pid": ..., "id": ...}``) or ``None``, in
        which case nothing is recorded — callers can pass contexts
        captured from disabled sessions straight through.
        """
        if not ctx:
            return self
        if self.links is None:
            self.links = []
        self.links.append({"pid": ctx["pid"], "id": ctx["id"], "kind": kind})
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        stack = tracer._stack()
        if stack:
            self.parent_id = stack[-1].span_id
            if self.rank is None:
                self.rank = stack[-1].rank
        elif tracer.remote_parent is not None:
            # Root span of a worker that inherited a cross-process
            # parent context: re-root causally via a dispatch link.
            self.link(tracer.remote_parent, kind="dispatch")
        if self.trace_id is None:
            self.trace_id = tracer.trace_id
        self.tid = threading.get_ident()
        stack.append(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> bool:
        self.end_ns = time.perf_counter_ns()
        tracer = self._tracer
        stack = tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        tracer._record(self)
        return False

    def to_dict(self) -> dict:
        d = {
            "name": self.name,
            "cat": self.cat,
            "id": self.span_id,
            "pid": self.pid,
            "tid": self.tid,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
        }
        if self.parent_id is not None:
            d["parent"] = self.parent_id
        if self.rank is not None:
            d["rank"] = self.rank
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        if self.trace_id is not None:
            d["trace"] = self.trace_id
        if self.links:
            d["links"] = [dict(link) for link in self.links]
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "Span":
        return cls(
            name=d["name"],
            cat=d.get("cat", "repro"),
            span_id=d["id"],
            pid=d["pid"],
            tid=d.get("tid", 0),
            parent_id=d.get("parent"),
            rank=d.get("rank"),
            start_ns=d["start_ns"],
            end_ns=d["end_ns"],
            attrs=dict(d.get("attrs", {})),
            trace_id=d.get("trace"),
            links=[dict(link) for link in d["links"]] if d.get("links") else None,
        )


# Process-wide id source: every tracer in a process draws from the same
# counter, so (pid, span_id) stays unique even when short-lived tracers
# come and go (pool workers build one per chunk).
_SPAN_IDS = itertools.count(1)


class Tracer:
    """Collects finished spans; thread-safe; one per telemetry session."""

    def __init__(self) -> None:
        self.pid = os.getpid()
        self.spans: list[Span] = []
        self._ids = _SPAN_IDS
        self._lock = threading.Lock()
        self._local = threading.local()
        # Causal-trace identity: every span entered on this tracer is
        # stamped with trace_id; remote_parent (a context dict) re-roots
        # stack-root spans of adopted worker tracers via dispatch links.
        self.trace_id: "str | None" = None
        self.remote_parent: "dict | None" = None
        # Optional span-close subscriber (the flight recorder's live
        # feed).  One attribute load + branch per close when unset; only
        # enabled sessions record at all, so the no-op path is untouched.
        self.listener: "Callable[[dict], None] | None" = None

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)
        listener = self.listener
        if listener is not None:
            listener(span.to_dict())

    def span(
        self, name: str, cat: str = "repro", rank: "int | None" = None, **attrs
    ) -> Span:
        """Open a new span (enter it with ``with``)."""
        return Span(
            name=name,
            cat=cat,
            span_id=next(self._ids),
            pid=self.pid,
            rank=rank,
            attrs=attrs,
            _tracer=self,
        )

    def current_span(self) -> "Span | None":
        stack = self._stack()
        return stack[-1] if stack else None

    def context(self) -> "dict | None":
        """The calling thread's current span as a propagatable context.

        The dict (``{"trace": str|None, "pid": int, "id": int}``) is
        JSON/pickle-friendly so it can ride on comm messages, lease
        records, and pool task tuples.  ``None`` when no span is open.
        """
        span = self.current_span()
        if span is None:
            return None
        return {
            "trace": span.trace_id or self.trace_id,
            "pid": self.pid,
            "id": span.span_id,
        }

    def absorb(self, span_dicts: "list[dict]") -> None:
        """Merge spans exported by another process (pool workers)."""
        with self._lock:
            for d in span_dicts:
                self.spans.append(Span.from_dict(d))
        listener = self.listener
        if listener is not None:
            for d in span_dicts:
                listener(d)

    def export(self) -> "list[dict]":
        with self._lock:
            return [s.to_dict() for s in self.spans]
