"""Critical-path extraction and time attribution over a causal trace.

Input is the span-dict list a :class:`~repro.telemetry.spans.Tracer`
exports (or a ``trace.jsonl`` written by ``write_jsonl``): spans keyed
by ``(pid, id)``, tree edges via ``parent``, causal edges via ``links``
(see :mod:`repro.telemetry.causal`).  Two analyses run on that DAG:

**Critical path** — the longest causal chain through the trace.  The
walk starts from a virtual root covering the whole trace window and
repeatedly descends into the *last-finishing dependency* (child span or
link source) before the current attribution point, emitting the
enclosing span's own time for the gaps between dependencies.  Every
segment is ``(span, t0, t1)``; by construction the segments tile the
trace window, so their sum over wall-clock is the coverage ratio CI
gates at >= 0.95.  Because ``recv`` links to the sender's ``send`` span
and stolen-lease searches link to the victim's context, the path
threads *across ranks and processes* instead of dead-ending at a
blocking wait.

**Time attribution** — every lane's (one ``(pid, tid)`` execution
thread's) wall-clock split into exclusive per-span time and bucketed:

=============  =====================================================
bucket         spans
=============  =====================================================
compute        scan/search/reduce/prune work (the default)
comm_wait      ``cat == "comm"`` — blocking recv, stalls, send
lease_wait     ``lease.wait`` — idle polling for a grantable lease
retry          ``fault.retry`` recovery attempts
steal          ``fault.reschedule`` and searches of stolen leases
               (``attrs.stolen``)
checkpoint     ``cat == "checkpoint"`` — state save I/O
idle           runner scaffolding (``spmd.rank``/``spmd.world``
               exclusive time) and the virtual root
=============  =====================================================

Exclusive time is a span's duration minus its direct children's
(clipped) durations, so per-lane buckets sum to the lane's root span
durations exactly — the closure CI gates at within 1% of total
measured rank-seconds.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "BUCKETS",
    "CRITPATH_SCHEMA",
    "analyze_trace",
    "attribute_time",
    "classify_span",
    "critical_path",
    "dominant_loss",
    "format_report",
    "load_trace",
]

CRITPATH_SCHEMA = "repro.telemetry.critpath/v1"

BUCKETS = (
    "compute",
    "comm_wait",
    "lease_wait",
    "retry",
    "steal",
    "checkpoint",
    "idle",
)

#: Spans whose *exclusive* time is runner scaffolding, not work.
_IDLE_NAMES = frozenset({"spmd.rank", "spmd.world", "__root__"})


def classify_span(span: dict) -> str:
    """Attribution bucket for one span dict."""
    name = span.get("name", "")
    cat = span.get("cat", "")
    attrs = span.get("attrs") or {}
    if cat == "comm":
        return "comm_wait"
    if name == "lease.wait":
        return "lease_wait"
    if name == "fault.retry":
        return "retry"
    if name == "fault.reschedule" or attrs.get("stolen"):
        return "steal"
    if cat == "checkpoint":
        return "checkpoint"
    if name in _IDLE_NAMES:
        return "idle"
    return "compute"


# ---------------------------------------------------------------------------
# graph plumbing


def _index(spans: "list[dict]"):
    by_key: dict = {}
    children: dict = {}
    roots: list = []
    for s in spans:
        by_key[(s["pid"], s["id"])] = s
    for s in spans:
        parent = s.get("parent")
        if parent is not None and (s["pid"], parent) in by_key:
            children.setdefault((s["pid"], parent), []).append(s)
        else:
            roots.append(s)
    return by_key, children, roots


def _deps(span: dict, by_key: dict, children: dict) -> "list[dict]":
    deps = list(children.get((span["pid"], span["id"]), ()))
    for link in span.get("links") or ():
        target = by_key.get((link["pid"], link["id"]))
        if target is not None:
            deps.append(target)
    return deps


# ---------------------------------------------------------------------------
# critical path


def critical_path(spans: "list[dict]", top: int = 10) -> dict:
    """Longest causal chain through the span DAG.

    Returns segments in chronological order plus the top-``top``
    segments by duration; each segment carries the owning span's name,
    ``(pid, id)``, rank, bucket, and its clipped interval.
    """
    spans = [s for s in spans if s.get("end_ns", 0) > s.get("start_ns", 0)]
    if not spans:
        return {
            "length_s": 0.0,
            "wall_s": 0.0,
            "coverage": 0.0,
            "segments": [],
            "top_segments": [],
            "buckets": {b: 0.0 for b in BUCKETS},
        }
    by_key, children, roots = _index(spans)
    t_min = min(s["start_ns"] for s in spans)
    t_max = max(s["end_ns"] for s in spans)
    # Virtual root over the whole window: uniform handling of complete
    # traces (a covering "solve" span becomes its sole dependency) and
    # live partial traces (many parentless spans, nothing covering).
    root = {
        "name": "__root__",
        "cat": "critpath",
        "id": 0,
        "pid": 0,
        "start_ns": t_min,
        "end_ns": t_max,
    }
    root_key = (0, 0)
    children[root_key] = roots
    by_key[root_key] = root

    segments: "list[tuple[dict, int, int]]" = []
    visited = {root_key}

    # Backward scan with one global cursor ``t``: every emitted segment
    # ends where the previous one started, so the segments tile the
    # window by construction.  From the span owning the cursor we
    # descend into its last-finishing unvisited dependency (child or
    # link source) before ``t``; when a span entered through a *link*
    # exhausts its own interval, the scan continues into its enclosing
    # parent — that is what threads a blocked recv into the sender's
    # earlier work on another rank instead of dead-ending at the send.
    # Iterative (no recursion) so comm chains thousands of hops long
    # cannot hit the recursion limit.

    t = t_max

    def advance(span: dict, t0: int) -> None:
        """Lower the cursor to ``t0``, attributing ``[t0, t]``.

        The overlap with ``span``'s own interval is the span's segment;
        anything outside it (a link source that finished before the
        dependent span even started — a reduce draining completions,
        say) books to the virtual root as idle.  Every nanosecond of
        ``[t0, t]`` lands in exactly one segment, so the path tiles the
        window by construction.
        """
        nonlocal t
        t0 = max(t0, t_min)
        if t0 >= t:
            t = min(t, t0)
            return
        a = max(span["start_ns"], t0)
        b = min(span["end_ns"], t)
        if b > a:
            if t > b:
                segments.append((root, b, t))
            segments.append((span, a, b))
            if a > t0:
                segments.append((root, t0, a))
        else:
            segments.append((root, t0, t))
        t = t0

    dep_cache: dict = {}

    def sorted_deps(span: dict) -> list:
        key = (span["pid"], span["id"])
        if key not in dep_cache:
            ds = [
                d
                for d in _deps(span, by_key, children)
                if d["end_ns"] > d["start_ns"]
            ]
            ds.sort(key=lambda d: d["end_ns"], reverse=True)
            dep_cache[key] = ds
        return dep_cache[key]

    cur_span, cur_idx = root, 0
    stack: list = []
    while True:
        deps = sorted_deps(cur_span)
        best = None
        while cur_idx < len(deps):
            d = deps[cur_idx]
            # ``t`` never increases, so deps ending after it (or already
            # claimed by another chain) are skipped permanently.
            if d["end_ns"] > t or (d["pid"], d["id"]) in visited:
                cur_idx += 1
                continue
            best = d
            break
        if best is not None:
            advance(cur_span, best["end_ns"])
            visited.add((best["pid"], best["id"]))
            stack.append((cur_span, cur_idx))
            cur_span, cur_idx = best, 0
            continue
        advance(cur_span, cur_span["start_ns"])
        if t <= t_min:
            break
        parent_id = cur_span.get("parent")
        parent = (
            by_key.get((cur_span["pid"], parent_id))
            if parent_id is not None
            else None
        )
        if parent is not None and (parent["pid"], parent["id"]) not in visited:
            visited.add((parent["pid"], parent["id"]))
            cur_span, cur_idx = parent, 0
            continue
        if not stack:
            break
        cur_span, cur_idx = stack.pop()

    segments.sort(key=lambda seg: seg[1])
    length_ns = sum(t1 - t0 for _, t0, t1 in segments)
    wall_ns = t_max - t_min
    buckets = {b: 0.0 for b in BUCKETS}
    out_segments = []
    for span, t0, t1 in segments:
        bucket = classify_span(span)
        buckets[bucket] += (t1 - t0) / 1e9
        out_segments.append(
            {
                "name": span["name"],
                "pid": span["pid"],
                "id": span["id"],
                "rank": span.get("rank"),
                "bucket": bucket,
                "t0_ns": t0,
                "t1_ns": t1,
                "dur_s": (t1 - t0) / 1e9,
            }
        )
    top_segments = sorted(out_segments, key=lambda s: s["dur_s"], reverse=True)[:top]
    return {
        "length_s": length_ns / 1e9,
        "wall_s": wall_ns / 1e9,
        "coverage": (length_ns / wall_ns) if wall_ns else 0.0,
        "segments": out_segments,
        "top_segments": top_segments,
        "buckets": buckets,
    }


# ---------------------------------------------------------------------------
# time attribution


def attribute_time(spans: "list[dict]") -> dict:
    """Bucket every lane's wall-clock by exclusive per-span time.

    A lane is one ``(pid, tid)`` execution thread; its total is the sum
    of its root-span durations (total measured rank-seconds when the
    lanes are rank runners).  Bucket seconds per lane sum to that total
    by construction — ``closure`` reports the ratio CI gates at 1±0.01.
    """
    spans = [s for s in spans if s.get("end_ns", 0) >= s.get("start_ns", 0)]
    by_key, children, roots = _index(spans)
    lanes: dict = {}
    for s in roots:
        lane = lanes.setdefault(
            (s["pid"], s.get("tid", 0)),
            {"roots": [], "rank": None},
        )
        lane["roots"].append(s)
        if lane["rank"] is None and s.get("rank") is not None:
            lane["rank"] = s.get("rank")

    totals = {b: 0.0 for b in BUCKETS}
    lane_rows = []
    grand_total = 0.0
    for (pid, tid), lane in sorted(lanes.items()):
        lane_buckets = {b: 0.0 for b in BUCKETS}
        lane_total_ns = 0
        stack = list(lane["roots"])
        rank = lane["rank"]
        for root in lane["roots"]:
            lane_total_ns += root["end_ns"] - root["start_ns"]
        while stack:
            s = stack.pop()
            if rank is None and s.get("rank") is not None:
                rank = s.get("rank")
            dur = s["end_ns"] - s["start_ns"]
            child_ns = 0
            for child in children.get((s["pid"], s["id"]), ()):
                stack.append(child)
                child_ns += max(
                    0,
                    min(child["end_ns"], s["end_ns"])
                    - max(child["start_ns"], s["start_ns"]),
                )
            exclusive = max(0, dur - child_ns) / 1e9
            lane_buckets[classify_span(s)] += exclusive
        lane_total = lane_total_ns / 1e9
        grand_total += lane_total
        for b in BUCKETS:
            totals[b] += lane_buckets[b]
        lane_rows.append(
            {
                "pid": pid,
                "tid": tid,
                "rank": rank,
                "total_s": lane_total,
                "buckets": lane_buckets,
            }
        )

    bucket_sum = sum(totals.values())
    return {
        "total_s": grand_total,
        "buckets": totals,
        "fractions": {
            b: (totals[b] / grand_total if grand_total else 0.0) for b in BUCKETS
        },
        "efficiency": (totals["compute"] / grand_total) if grand_total else 0.0,
        "closure": (bucket_sum / grand_total) if grand_total else 1.0,
        "lanes": lane_rows,
    }


def dominant_loss(report: dict) -> "str | None":
    """The loss bucket with the most attributed seconds.

    ``compute`` is the goal and ``idle`` is supervisor scaffolding (the
    driver lane polling while ranks work) — neither is an *actionable*
    loss, so the dominant loss is the largest of the wait buckets:
    what an operator should attack first.
    """
    buckets = report["attribution"]["buckets"]
    losses = {
        b: s for b, s in buckets.items()
        if b not in ("compute", "idle") and s > 0
    }
    if not losses:
        return None
    return max(losses, key=losses.get)


# ---------------------------------------------------------------------------
# end-to-end report


def analyze_trace(spans: "list[dict]", top: int = 10) -> dict:
    """Full causal analysis: critical path + attribution + loss table."""
    trace_id = next((s.get("trace") for s in spans if s.get("trace")), None)
    cp = critical_path(spans, top=top)
    attr = attribute_time(spans)
    loss = [
        {
            "bucket": b,
            "seconds": attr["buckets"][b],
            "fraction": attr["fractions"][b],
            "critical_path_s": cp["buckets"][b],
        }
        for b in BUCKETS
        if b != "compute"
    ]
    loss.sort(key=lambda row: row["seconds"], reverse=True)
    report = {
        "schema": CRITPATH_SCHEMA,
        "trace_id": trace_id,
        "span_count": len(spans),
        "wall_s": cp["wall_s"],
        "critical_path": cp,
        "attribution": attr,
        "loss": loss,
    }
    report["dominant_loss"] = dominant_loss(report)
    return report


def load_trace(path) -> "list[dict]":
    """Span dicts from a ``trace.jsonl`` (or JSON list / job payload).

    Accepts the three shapes exporters produce: JSONL (one record per
    line, ``type: "span"`` rows kept), a bare JSON list of span dicts,
    or an object with a ``"spans"`` key (``export_state`` payloads).
    """
    text = Path(path).read_text()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        payload = None  # multiple JSONL records: parse line by line
    if isinstance(payload, list):
        return payload
    if isinstance(payload, dict):
        if "spans" in payload:
            return payload["spans"]
        if payload.get("type") == "span":
            return [{k: v for k, v in payload.items() if k != "type"}]
        return []
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("type") == "span":
            spans.append({k: v for k, v in record.items() if k != "type"})
    return spans


def format_report(report: dict, top: int = 10) -> str:
    """Human-readable report for ``multihit trace analyze``."""
    cp = report["critical_path"]
    attr = report["attribution"]
    lines = []
    lines.append(f"trace      {report.get('trace_id') or '<none>'}")
    lines.append(f"spans      {report['span_count']}")
    lines.append(f"wall-clock {report['wall_s']:.3f}s")
    lines.append(
        f"critical path {cp['length_s']:.3f}s "
        f"({cp['coverage'] * 100:.1f}% of wall-clock, "
        f"{len(cp['segments'])} segments)"
    )
    lines.append("")
    lines.append(f"attribution over {attr['total_s']:.3f} rank-seconds "
                 f"({len(attr['lanes'])} lanes, closure {attr['closure']:.4f}):")
    width = max(len(b) for b in BUCKETS)
    for b in BUCKETS:
        seconds = attr["buckets"][b]
        frac = attr["fractions"][b]
        bar = "#" * int(round(frac * 40))
        lines.append(f"  {b:<{width}}  {seconds:9.3f}s  {frac * 100:5.1f}%  {bar}")
    lines.append(f"  efficiency vs ideal (all-compute): "
                 f"{attr['efficiency'] * 100:.1f}%")
    dominant = report.get("dominant_loss")
    if dominant:
        lines.append(f"  dominant loss bucket: {dominant}")
    lines.append("")
    lines.append(f"top {min(top, len(cp['top_segments']))} critical-path segments:")
    for seg in cp["top_segments"][:top]:
        rank = f" rank={seg['rank']}" if seg.get("rank") is not None else ""
        lines.append(
            f"  {seg['dur_s']:8.3f}s  {seg['name']}"
            f" [{seg['bucket']}] pid={seg['pid']} id={seg['id']}{rank}"
        )
    return "\n".join(lines)
