"""repro.telemetry — unified tracing, metrics, and benchmark reporting.

The observability substrate shared by every execution backend: a
:class:`Tracer` of nested thread/rank-aware spans, a
:class:`MetricsRegistry` of counters/gauges/histograms with
cross-process merge, and exporters for JSONL event logs, Chrome
``trace_event`` JSON (Perfetto-loadable), and benchmark summary JSON
(`BENCH_*.json`).

Telemetry is off by default (:data:`NULL_TELEMETRY`, whose span calls
return a shared no-op singleton); instrumented code pays two attribute
loads and a branch per site when disabled.  Enable per run::

    from repro.telemetry import telemetry_session, write_chrome_trace

    with telemetry_session() as tel:
        result = MultiHitSolver(backend="pool").solve(tumor, normal)
    write_chrome_trace("trace.json", tel)
"""

from repro.telemetry.metrics import HistogramStat, MetricsRegistry
from repro.telemetry.session import (
    NULL_TELEMETRY,
    Telemetry,
    get_telemetry,
    set_telemetry,
    telemetry_session,
)
from repro.telemetry.spans import NOOP_SPAN, Span, Stopwatch, Tracer
from repro.telemetry.export import (
    SUMMARY_SCHEMA,
    chrome_trace,
    summarize,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_summary,
)

__all__ = [
    "HistogramStat",
    "MetricsRegistry",
    "NOOP_SPAN",
    "NULL_TELEMETRY",
    "SUMMARY_SCHEMA",
    "Span",
    "Stopwatch",
    "Telemetry",
    "Tracer",
    "chrome_trace",
    "get_telemetry",
    "set_telemetry",
    "summarize",
    "telemetry_session",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_summary",
]
