"""repro.telemetry — unified tracing, metrics, and benchmark reporting.

The observability substrate shared by every execution backend: a
:class:`Tracer` of nested thread/rank-aware spans, a
:class:`MetricsRegistry` of counters/gauges/histograms with
cross-process merge, and exporters for JSONL event logs, Chrome
``trace_event`` JSON (Perfetto-loadable), and benchmark summary JSON
(`BENCH_*.json`).

Telemetry is off by default (:data:`NULL_TELEMETRY`, whose span calls
return a shared no-op singleton); instrumented code pays two attribute
loads and a branch per site when disabled.  Enable per run::

    from repro.telemetry import telemetry_session, write_chrome_trace

    with telemetry_session() as tel:
        result = MultiHitSolver(backend="pool").solve(tumor, normal)
    write_chrome_trace("trace.json", tel)

Enabled sessions additionally carry a causal identity: a ``trace_id``
minted per session (or adopted from a gateway job), span-to-span links
stamped across every async boundary (see :mod:`repro.telemetry.causal`),
and the offline analyzer (:mod:`repro.telemetry.critpath`) that turns
an exported trace into a critical path + per-bucket time attribution
(``multihit trace analyze``).
"""

from repro.telemetry.causal import current_context, new_trace_id
from repro.telemetry.critpath import (
    BUCKETS,
    CRITPATH_SCHEMA,
    analyze_trace,
    attribute_time,
    classify_span,
    critical_path,
    dominant_loss,
    format_report,
    load_trace,
)
from repro.telemetry.metrics import HistogramStat, MetricsRegistry
from repro.telemetry.session import (
    NULL_TELEMETRY,
    Telemetry,
    get_telemetry,
    set_telemetry,
    telemetry_session,
)
from repro.telemetry.spans import NOOP_SPAN, Span, Stopwatch, Tracer
from repro.telemetry.export import (
    SUMMARY_SCHEMA,
    atomic_write_text,
    chrome_trace,
    summarize,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_summary,
)
from repro.telemetry.flight import FLIGHT_SCHEMA, FlightRecorder
from repro.telemetry.prom import (
    MetricsServer,
    render_prometheus,
    validate_prometheus,
)
from repro.telemetry.progress import (
    ProgressMonitor,
    ProgressSnapshot,
    eta_seconds,
    perfmodel_rate,
)
from repro.telemetry.regress import (
    Regression,
    RegressionCheck,
    compare_summaries,
)

__all__ = [
    "BUCKETS",
    "CRITPATH_SCHEMA",
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "HistogramStat",
    "MetricsRegistry",
    "MetricsServer",
    "NOOP_SPAN",
    "NULL_TELEMETRY",
    "ProgressMonitor",
    "ProgressSnapshot",
    "Regression",
    "RegressionCheck",
    "SUMMARY_SCHEMA",
    "Span",
    "Stopwatch",
    "Telemetry",
    "Tracer",
    "analyze_trace",
    "atomic_write_text",
    "attribute_time",
    "chrome_trace",
    "classify_span",
    "compare_summaries",
    "critical_path",
    "current_context",
    "dominant_loss",
    "eta_seconds",
    "format_report",
    "get_telemetry",
    "load_trace",
    "new_trace_id",
    "perfmodel_rate",
    "render_prometheus",
    "set_telemetry",
    "summarize",
    "telemetry_session",
    "validate_chrome_trace",
    "validate_prometheus",
    "write_chrome_trace",
    "write_jsonl",
    "write_summary",
]
