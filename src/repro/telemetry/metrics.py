"""Unified counter / gauge / histogram registry with cross-process merge.

One namespace absorbs every accounting stream the repo previously kept
in islands: the scoring-kernel :class:`~repro.core.kernels.KernelCounters`
(``kernel.*``), pool chunk statistics (``pool.*``), fault/retry events
(``faults.*``, routed live from :class:`repro.faults.FaultReport`), comm
traffic (``comm.*``), gpusim launch accounting and NVPROF-style
occupancy/stall metrics (``gpusim.*``), and checkpoint I/O
(``checkpoint.*``).

Registries merge: pool workers ship ``to_dict()`` snapshots back over
the existing result channel, SPMD ranks gather theirs to rank 0 over the
communicator, and the parent folds them in with :meth:`merge_dict`.
Counters add, gauges last-write-wins, histograms combine their
count/sum/min/max moments.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = ["HistogramStat", "MetricsRegistry"]


@dataclass
class HistogramStat:
    """Moment summary of an observed distribution."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def combine(self, other: "HistogramStat") -> None:
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Thread-safe named counters, gauges, and histograms."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, HistogramStat] = {}
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.gauges[name] = float(value)

    def clear_gauges(self, prefix: str) -> int:
        """Drop every gauge whose name starts with ``prefix``.

        Gauges are last-write-wins snapshots keyed by name; a key that
        stops being written (a departed rank's ``spmd.heartbeat_stale_s.
        rankN``) would otherwise report its final value forever.  World
        (re)starts clear their per-rank keys so ``/metrics`` and the
        progress monitor only ever show the current membership.
        """
        with self._lock:
            stale = [name for name in self.gauges if name.startswith(prefix)]
            for name in stale:
                del self.gauges[name]
            return len(stale)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = HistogramStat()
            hist.observe(float(value))

    # -- absorption of existing accounting streams ---------------------

    def absorb_kernel_counters(self, counters, prefix: str = "kernel") -> None:
        """Fold a :class:`repro.core.kernels.KernelCounters` in.

        The pruning fields land under ``prune.*`` (not ``{prefix}.*``):
        they describe the lazy-greedy engine's behavior, not kernel
        traffic, and are only emitted when the pruned path actually ran.
        """
        self.inc(f"{prefix}.combos_scored", counters.combos_scored)
        self.inc(f"{prefix}.word_reads", counters.word_reads)
        self.inc(f"{prefix}.word_ops", counters.word_ops)
        if counters.decode_strides:
            self.inc(f"{prefix}.decode_strides", counters.decode_strides)
        if counters.inner_tables_built:
            self.inc(f"{prefix}.inner_tables_built", counters.inner_tables_built)
        # Sparse-path diagnostics: emitted only when the sparsity-driven
        # scan actually ran (any skipped traffic or cache hit).
        if counters.word_reads_skipped:
            self.inc(f"{prefix}.word_reads_skipped", counters.word_reads_skipped)
        if counters.strides_skipped_sparse:
            self.inc(
                f"{prefix}.strides_skipped_sparse",
                counters.strides_skipped_sparse,
            )
        if counters.prefix_and_hits:
            self.inc(f"{prefix}.prefix_and_hits", counters.prefix_and_hits)
        if counters.zero_prefix_runs_skipped:
            self.inc(
                "prune.zero_prefix_runs_skipped",
                counters.zero_prefix_runs_skipped,
            )
        if counters.blocks_scanned or counters.blocks_skipped:
            self.inc("prune.combos_pruned", counters.combos_pruned)
            self.inc("prune.blocks_skipped", counters.blocks_skipped)
            self.inc("prune.blocks_scanned", counters.blocks_scanned)
            self.inc("prune.supers_skipped", counters.supers_skipped)

    def record_fault_event(self, kind: str, site: str, action: str) -> None:
        """Live routing target for :meth:`repro.faults.FaultReport.record`."""
        self.inc("faults.events")
        self.inc(f"faults.kind.{kind}")
        self.inc(f"faults.site.{site}")
        self.inc(f"faults.action.{action}")

    def absorb_pool_stats(self, stats, prefix: str = "pool") -> None:
        """Fold a :class:`repro.core.pool.PoolStats` in."""
        self.inc(f"{prefix}.stat_chunks", len(stats.chunks))
        self.inc(f"{prefix}.stat_inline_retries", stats.n_inline_retries)
        self.inc(f"{prefix}.stat_shipped_bytes", stats.shipped_bytes)
        for chunk in stats.chunks:
            self.observe(f"{prefix}.chunk_wall_s", chunk.wall_seconds)

    def absorb_gpu_profile(self, profile, prefix: str = "gpusim") -> None:
        """Fold a :class:`repro.gpusim.profiler.GpuProfile` in."""
        for metric in profile.metrics:
            self.inc(f"{prefix}.bound.{metric.bound}")
            self.observe(f"{prefix}.utilization", metric.utilization)
            self.observe(f"{prefix}.busy_s", metric.busy_s)
            self.observe(
                f"{prefix}.stall_memory_dependency", metric.stall_memory_dependency
            )
            self.observe(
                f"{prefix}.stall_memory_throttle", metric.stall_memory_throttle
            )
            self.observe(
                f"{prefix}.stall_execution_dependency",
                metric.stall_execution_dependency,
            )
        transition = profile.memory_to_compute_transition()
        if transition is not None:
            self.set_gauge(f"{prefix}.memory_to_compute_transition", transition)

    # -- merge / serialization -----------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        self.merge_dict(other.to_dict())

    def merge_dict(self, state: dict) -> None:
        with self._lock:
            for name, value in state.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0) + value
            for name, value in state.get("gauges", {}).items():
                self.gauges[name] = value
            for name, d in state.get("histograms", {}).items():
                hist = self.histograms.get(name)
                if hist is None:
                    hist = self.histograms[name] = HistogramStat()
                hist.combine(
                    HistogramStat(
                        count=d["count"],
                        total=d["total"],
                        minimum=d["min"] if d["count"] else float("inf"),
                        maximum=d["max"] if d["count"] else float("-inf"),
                    )
                )

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {
                    name: h.to_dict() for name, h in self.histograms.items()
                },
            }
