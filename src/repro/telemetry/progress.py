"""Live progress / ETA monitor for long solves.

``C(G,4)`` grows to ~7e15 combinations at genome scale; a solve that
runs for hours must answer "how far along is it, and when will it
finish?" without being killed and post-processed.  The
:class:`ProgressMonitor` is a sampling daemon thread over the live
metrics registry:

* **λ-coverage** — the solver publishes ``progress.combos_scheduled``
  (combinations per greedy iteration) and feeds
  ``progress.combos_scored`` / ``progress.combos_pruned`` counters
  (per worker chunk on the pool backend, per iteration elsewhere); the
  monitor turns them into an in-iteration completion fraction;
* **rank health** — the SPMD fault detector exports per-rank heartbeat
  staleness gauges (``spmd.heartbeat_stale_s.*``); the monitor surfaces
  the worst one next to the fault-event count;
* **ETA** — measured throughput (combinations examined per second since
  the monitor started) once data exists, the :mod:`repro.perfmodel`
  timing-model rate (:func:`perfmodel_rate`) before it does.

Each sample is re-exported as gauges (``progress.fraction``,
``progress.rate_combos_per_s``, ``progress.eta_s``) so the same numbers
reach the ``/metrics`` endpoint, and optionally rendered as a
single-line ``\\r``-rewritten console status (what the CLI's
``--progress`` shows on stderr).

When the watched session is tracing, each sample also runs the causal
analyzer (:mod:`repro.telemetry.critpath`) over the spans closed so
far and exports ``progress.critical_path_fraction`` (critical-path
seconds over total attributed rank-seconds — 1.0 means fully serial)
and ``progress.comm_wait_fraction`` (share of rank time blocked on the
wire), rendered on the status line as ``crit ..% / comm ..%``.  The
analysis is skipped past ``span_cap`` retained spans so a monster
trace never turns the sampler into the bottleneck it is watching.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass

__all__ = ["ProgressMonitor", "ProgressSnapshot", "eta_seconds", "perfmodel_rate"]


def eta_seconds(
    done: float,
    total: float,
    elapsed_s: float,
    model_rate: "float | None" = None,
) -> "float | None":
    """Remaining seconds for ``total - done`` units of work.

    Measured throughput (``done / elapsed_s``) wins once any work has
    completed; before that the caller's model estimate (combinations per
    second from the perf model) is used.  ``None`` when no rate is
    available or the work is already complete.
    """
    remaining = max(0.0, total - done)
    if remaining == 0.0:
        return 0.0
    rate = done / elapsed_s if done > 0 and elapsed_s > 0 else model_rate
    if not rate or rate <= 0:
        return None
    return remaining / rate


def perfmodel_rate(scheme, n_genes: int, words: int, memory=None) -> float:
    """Timing-model combinations/second for one device (the ETA prior).

    Same arithmetic as :meth:`repro.perfmodel.runtime.JobModel.
    single_gpu_seconds`, reduced to a rate: combinations per second a
    V100 sustains on a ``words``-wide packed cohort under ``scheme``.
    """
    from repro.core.memopt import MemoryConfig
    from repro.gpusim.device import V100
    from repro.gpusim.timing import TimingTuning

    memory = memory if memory is not None else MemoryConfig()
    tuning = TimingTuning()
    pre = min(memory.prefetched_rows, scheme.flattened)
    rows = (scheme.flattened - pre) + scheme.inner
    combos = math.comb(n_genes, scheme.hits)
    ops = combos * tuning.ops_per_combo(words, rows)
    seconds = ops / (V100.peak_int_ops_per_s * tuning.issue_efficiency)
    return combos / seconds if seconds > 0 else 0.0


@dataclass(frozen=True)
class ProgressSnapshot:
    """One sample of solve progress (everything the status line shows)."""

    elapsed_s: float
    iteration: int
    combos_examined: int  # scored + pruned, cumulative over the run
    iteration_done: int  # examined within the current iteration
    iteration_total: int  # scheduled combinations per iteration
    fraction: float  # iteration_done / iteration_total
    rate_combos_per_s: "float | None"
    eta_s: "float | None"
    heartbeat_stale_s: "float | None"
    fault_events: int
    critical_path_fraction: "float | None" = None
    comm_wait_fraction: "float | None" = None

    def status_line(self) -> str:
        """The single-line console rendering."""
        pct = f"{100.0 * self.fraction:5.1f}%" if self.iteration_total else "  n/a"
        rate = (
            f"{self.rate_combos_per_s:,.0f}/s"
            if self.rate_combos_per_s
            else "--/s"
        )
        eta = _fmt_duration(self.eta_s)
        line = (
            f"iter {self.iteration or '-'} {pct} "
            f"({self.iteration_done:,}/{self.iteration_total:,}) "
            f"| {rate} | eta {eta} | elapsed {_fmt_duration(self.elapsed_s)}"
        )
        if self.fault_events:
            line += f" | faults {self.fault_events}"
        if self.heartbeat_stale_s is not None:
            line += f" | hb {self.heartbeat_stale_s:.1f}s"
        if self.critical_path_fraction is not None:
            line += f" | crit {100.0 * self.critical_path_fraction:.0f}%"
        if self.comm_wait_fraction is not None:
            line += f" | comm {100.0 * self.comm_wait_fraction:.0f}%"
        return line


def _fmt_duration(seconds: "float | None") -> str:
    if seconds is None:
        return "--"
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


class ProgressMonitor:
    """Samples the live registry on a daemon thread; renders + re-exports.

    Parameters
    ----------
    telemetry:
        Session to watch; ``None`` resolves the installed session at
        each sample (matches the CLI lifecycle).
    interval_s:
        Sampling cadence.
    stream:
        Where the single-line status goes (``None`` disables rendering;
        the monitor still samples and exports gauges).
    model_rate:
        Combinations/second prior for the ETA before measurements exist
        (:func:`perfmodel_rate`).
    span_cap:
        Skip the per-sample causal analysis once the session has
        retained more than this many spans (0 disables the analysis
        entirely); the gauges keep their last exported values.
    """

    def __init__(
        self,
        telemetry=None,
        interval_s: float = 0.5,
        stream=None,
        model_rate: "float | None" = None,
        span_cap: int = 4096,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.telemetry = telemetry
        self.interval_s = interval_s
        self.stream = stream
        self.model_rate = model_rate
        self.span_cap = span_cap
        self.samples: list[ProgressSnapshot] = []
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None
        self._t0 = 0.0
        self._examined0 = 0

    # -- session plumbing ----------------------------------------------

    def _session(self):
        if self.telemetry is not None:
            return self.telemetry
        from repro.telemetry.session import get_telemetry

        return get_telemetry()

    # -- sampling ------------------------------------------------------

    def sample(self) -> ProgressSnapshot:
        """Read the registry, compute a snapshot, re-export the gauges."""
        telemetry = self._session()
        state = telemetry.metrics.to_dict()
        counters, gauges = state["counters"], state["gauges"]
        now = time.monotonic()
        if self._t0 == 0.0:
            self._t0 = now
        elapsed = now - self._t0

        scored = counters.get("progress.combos_scored", 0)
        pruned = counters.get("progress.combos_pruned", 0)
        examined = scored + pruned
        total = int(gauges.get("progress.combos_scheduled", 0))
        base = int(gauges.get("progress.iteration_base", 0))
        iteration = int(gauges.get("progress.iteration", 0))
        done = max(0, examined - base)
        fraction = done / total if total else 0.0

        measured = examined - self._examined0
        rate = measured / elapsed if measured > 0 and elapsed > 0 else None
        # elapsed_s=0 forces eta_seconds onto the explicit rate: the
        # measured run rate when there is one, the perf-model prior
        # otherwise (``done`` alone is in-iteration, not run-elapsed).
        eta = (
            eta_seconds(
                float(done), float(total), 0.0,
                model_rate=rate or self.model_rate,
            )
            if total
            else None
        )

        stale = [
            v for k, v in gauges.items() if k.startswith("spmd.heartbeat_stale_s")
        ]
        crit_frac, comm_frac = self._span_fractions(telemetry)
        snapshot = ProgressSnapshot(
            elapsed_s=elapsed,
            iteration=iteration,
            combos_examined=examined,
            iteration_done=done,
            iteration_total=total,
            fraction=min(1.0, fraction),
            rate_combos_per_s=rate or self.model_rate,
            eta_s=eta,
            heartbeat_stale_s=max(stale) if stale else None,
            fault_events=counters.get("faults.events", 0),
            critical_path_fraction=crit_frac,
            comm_wait_fraction=comm_frac,
        )
        if telemetry.enabled:
            telemetry.set_gauge("progress.fraction", snapshot.fraction)
            if snapshot.rate_combos_per_s is not None:
                telemetry.set_gauge(
                    "progress.rate_combos_per_s", snapshot.rate_combos_per_s
                )
            if snapshot.eta_s is not None:
                telemetry.set_gauge("progress.eta_s", snapshot.eta_s)
            if crit_frac is not None:
                telemetry.set_gauge("progress.critical_path_fraction", crit_frac)
            if comm_frac is not None:
                telemetry.set_gauge("progress.comm_wait_fraction", comm_frac)
        self.samples.append(snapshot)
        return snapshot

    def _span_fractions(self, telemetry) -> "tuple[float | None, float | None]":
        """Causal fractions from the spans closed so far (or ``None``s).

        Runs the critical-path extractor and the time-attribution pass
        over the live tracer ring.  Partial traces are fine — the
        analyzer roots at a virtual window root — but nonsense can
        happen mid-span, so any analysis error degrades to ``None``
        rather than killing the sampler.
        """
        if not telemetry.enabled or self.span_cap <= 0:
            return None, None
        spans = telemetry.tracer.export()
        if not spans or len(spans) > self.span_cap:
            return None, None
        from repro.telemetry.critpath import attribute_time, critical_path

        try:
            attribution = attribute_time(spans)
            total = attribution["total_s"]
            if total <= 0:
                return None, None
            cp = critical_path(spans, top=1)
            crit = min(1.0, cp["length_s"] / total)
            comm = attribution["fractions"].get("comm_wait", 0.0)
            return crit, comm
        except (KeyError, ValueError, ZeroDivisionError):
            return None, None

    # -- the sampling thread -------------------------------------------

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._render(self.sample())

    def _render(self, snapshot: ProgressSnapshot) -> None:
        if self.stream is not None:
            self.stream.write("\r\x1b[2K" + snapshot.status_line())
            self.stream.flush()

    def start(self) -> "ProgressMonitor":
        if self._thread is not None:
            return self
        self._t0 = time.monotonic()
        state = self._session().metrics.to_dict()["counters"]
        self._examined0 = state.get("progress.combos_scored", 0) + state.get(
            "progress.combos_pruned", 0
        )
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-progress-monitor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self._render(self.sample())  # final state, not a stale line
        if self.stream is not None:
            self.stream.write("\n")
            self.stream.flush()

    def __enter__(self) -> "ProgressMonitor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
