"""Prometheus text exposition + a stdlib ``/metrics`` scrape endpoint.

The PR-3 telemetry layer is post-hoc: spans and metrics are exported
after ``solve()`` returns, which is useless for watching a multi-hour
solve *while it runs*.  This module renders the live
:class:`~repro.telemetry.metrics.MetricsRegistry` in the Prometheus text
exposition format (version 0.0.4) and serves it from a daemon-thread
``http.server`` so any scraper (Prometheus, ``curl``, the tests) can
watch counters move mid-solve.

* counters → ``counter`` samples (names sanitized: ``kernel.combos_scored``
  becomes ``repro_kernel_combos_scored``);
* gauges → ``gauge`` samples;
* histograms → ``summary``-style ``_count`` / ``_sum`` samples plus
  ``_min`` / ``_max`` gauges (the registry keeps moments, not buckets).

The endpoint reads whatever session is installed at scrape time, so
pool/SPMD workers feed it through the registry snapshots the engines
absorb as each chunk/rank result arrives — mid-iteration, not
end-of-run.  ``/healthz`` answers liveness probes with uptime JSON.

No external dependency: :class:`MetricsServer` is
``http.server.ThreadingHTTPServer`` on a daemon thread, and
:func:`validate_prometheus` is a strict format checker the test suite
runs against real scrapes.
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = [
    "MetricsServer",
    "PROM_CONTENT_TYPE",
    "prometheus_name",
    "render_prometheus",
    "validate_prometheus",
]

PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|NaN|[+-]Inf)$"
)


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """Sanitize a registry metric name into a legal Prometheus name."""
    body = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if prefix:
        body = f"{prefix}_{body}"
    if not _NAME_OK.match(body):
        body = f"_{body}"
    return body


def _fmt(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(metrics: "dict | object", prefix: str = "repro") -> str:
    """Render a registry (or its ``to_dict`` snapshot) as exposition text."""
    if hasattr(metrics, "to_dict"):
        metrics = metrics.to_dict()
    lines: list[str] = []
    for name in sorted(metrics.get("counters", {})):
        prom = prometheus_name(name, prefix)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_fmt(metrics['counters'][name])}")
    for name in sorted(metrics.get("gauges", {})):
        prom = prometheus_name(name, prefix)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_fmt(metrics['gauges'][name])}")
    for name in sorted(metrics.get("histograms", {})):
        h = metrics["histograms"][name]
        prom = prometheus_name(name, prefix)
        lines.append(f"# TYPE {prom} summary")
        lines.append(f"{prom}_count {_fmt(h['count'])}")
        lines.append(f"{prom}_sum {_fmt(h['total'])}")
        for stat in ("min", "max"):
            lines.append(f"# TYPE {prom}_{stat} gauge")
            lines.append(f"{prom}_{stat} {_fmt(h[stat])}")
    return "\n".join(lines) + "\n"


def validate_prometheus(text: str) -> int:
    """Strict exposition-format check; returns the sample count.

    Raises :class:`ValueError` on the first violation: unparseable
    sample line, a sample whose metric was not declared by a preceding
    ``# TYPE`` line (histogram ``_count``/``_sum`` ride their summary
    declaration), an unknown type keyword, or a duplicate declaration.
    """
    declared: dict[str, str] = {}
    n_samples = 0
    for i, line in enumerate(text.splitlines()):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"line {i}: malformed TYPE declaration")
            _, _, name, kind = parts
            if kind not in ("counter", "gauge", "summary", "histogram", "untyped"):
                raise ValueError(f"line {i}: unknown metric type {kind!r}")
            if not _NAME_OK.match(name):
                raise ValueError(f"line {i}: illegal metric name {name!r}")
            if name in declared:
                raise ValueError(f"line {i}: duplicate declaration of {name}")
            declared[name] = kind
            continue
        if line.startswith("#"):
            continue  # HELP / comments
        m = _SAMPLE.match(line)
        if m is None:
            raise ValueError(f"line {i}: unparseable sample {line!r}")
        name = m.group(1)
        base = name
        for suffix in ("_count", "_sum", "_bucket"):
            if name.endswith(suffix) and name[: -len(suffix)] in declared:
                base = name[: -len(suffix)]
                break
        if base not in declared:
            raise ValueError(f"line {i}: sample {name!r} missing TYPE declaration")
        n_samples += 1
    return n_samples


class _Handler(BaseHTTPRequestHandler):
    """Serves ``/metrics`` and ``/healthz``; everything else is 404."""

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = self.server.render().encode()
            self._reply(200, PROM_CONTENT_TYPE, body)
        elif path == "/healthz":
            payload = {
                "status": "ok",
                "uptime_s": round(time.monotonic() - self.server.started_at, 3),
            }
            self._reply(200, "application/json", json.dumps(payload).encode())
        else:
            self._reply(404, "text/plain; charset=utf-8", b"not found\n")

    def _reply(self, code: int, ctype: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:  # silence per-request stderr spam
        pass


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, addr, telemetry, prefix: str):
        super().__init__(addr, _Handler)
        self._telemetry = telemetry
        self._prefix = prefix
        self.started_at = time.monotonic()

    def render(self) -> str:
        from repro.telemetry.session import get_telemetry

        telemetry = self._telemetry or get_telemetry()
        return render_prometheus(telemetry.metrics, prefix=self._prefix)


class MetricsServer:
    """A ``/metrics`` + ``/healthz`` endpoint on a daemon thread.

    ``telemetry=None`` scrapes whatever session is installed at request
    time (the right default for the CLI); pass a session explicitly to
    pin the endpoint to one run.  ``port=0`` binds an ephemeral port
    (read it back from ``.port`` — what the tests do).  Use as a context
    manager or call :meth:`start` / :meth:`stop`.
    """

    def __init__(
        self,
        telemetry=None,
        host: str = "127.0.0.1",
        port: int = 0,
        prefix: str = "repro",
    ) -> None:
        self.telemetry = telemetry
        self.host = host
        self.port = port
        self.prefix = prefix
        self._server: "_Server | None" = None
        self._thread: "threading.Thread | None" = None

    def start(self) -> "MetricsServer":
        if self._server is not None:
            return self
        self._server = _Server((self.host, self.port), self.telemetry, self.prefix)
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
