"""Prometheus text exposition + a stdlib ``/metrics`` scrape endpoint.

The PR-3 telemetry layer is post-hoc: spans and metrics are exported
after ``solve()`` returns, which is useless for watching a multi-hour
solve *while it runs*.  This module renders the live
:class:`~repro.telemetry.metrics.MetricsRegistry` in the Prometheus text
exposition format (version 0.0.4) and serves it from a daemon-thread
``http.server`` so any scraper (Prometheus, ``curl``, the tests) can
watch counters move mid-solve.

* counters → ``counter`` samples (names sanitized: ``kernel.combos_scored``
  becomes ``repro_kernel_combos_scored``);
* gauges → ``gauge`` samples;
* histograms → ``summary``-style ``_count`` / ``_sum`` samples plus
  ``_min`` / ``_max`` gauges (the registry keeps moments, not buckets).

The endpoint reads whatever session is installed at scrape time, so
pool/SPMD workers feed it through the registry snapshots the engines
absorb as each chunk/rank result arrives — mid-iteration, not
end-of-run.  ``/healthz`` answers liveness probes with uptime JSON.

No external dependency: :class:`MetricsServer` is
``http.server.ThreadingHTTPServer`` on a daemon thread, and
:func:`validate_prometheus` is a strict format checker the test suite
runs against real scrapes.
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = [
    "MetricsServer",
    "PROM_CONTENT_TYPE",
    "Response",
    "json_reply",
    "prometheus_name",
    "render_prometheus",
    "text_reply",
    "validate_prometheus",
]

PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|NaN|[+-]Inf)$"
)


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """Sanitize a registry metric name into a legal Prometheus name."""
    body = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if prefix:
        body = f"{prefix}_{body}"
    if not _NAME_OK.match(body):
        body = f"_{body}"
    return body


def _fmt(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(metrics: "dict | object", prefix: str = "repro") -> str:
    """Render a registry (or its ``to_dict`` snapshot) as exposition text."""
    if hasattr(metrics, "to_dict"):
        metrics = metrics.to_dict()
    lines: list[str] = []
    for name in sorted(metrics.get("counters", {})):
        prom = prometheus_name(name, prefix)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_fmt(metrics['counters'][name])}")
    for name in sorted(metrics.get("gauges", {})):
        prom = prometheus_name(name, prefix)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_fmt(metrics['gauges'][name])}")
    for name in sorted(metrics.get("histograms", {})):
        h = metrics["histograms"][name]
        prom = prometheus_name(name, prefix)
        lines.append(f"# TYPE {prom} summary")
        lines.append(f"{prom}_count {_fmt(h['count'])}")
        lines.append(f"{prom}_sum {_fmt(h['total'])}")
        for stat in ("min", "max"):
            lines.append(f"# TYPE {prom}_{stat} gauge")
            lines.append(f"{prom}_{stat} {_fmt(h[stat])}")
    return "\n".join(lines) + "\n"


def validate_prometheus(text: str) -> int:
    """Strict exposition-format check; returns the sample count.

    Raises :class:`ValueError` on the first violation: unparseable
    sample line, a sample whose metric was not declared by a preceding
    ``# TYPE`` line (histogram ``_count``/``_sum`` ride their summary
    declaration), an unknown type keyword, or a duplicate declaration.
    """
    declared: dict[str, str] = {}
    n_samples = 0
    for i, line in enumerate(text.splitlines()):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"line {i}: malformed TYPE declaration")
            _, _, name, kind = parts
            if kind not in ("counter", "gauge", "summary", "histogram", "untyped"):
                raise ValueError(f"line {i}: unknown metric type {kind!r}")
            if not _NAME_OK.match(name):
                raise ValueError(f"line {i}: illegal metric name {name!r}")
            if name in declared:
                raise ValueError(f"line {i}: duplicate declaration of {name}")
            declared[name] = kind
            continue
        if line.startswith("#"):
            continue  # HELP / comments
        m = _SAMPLE.match(line)
        if m is None:
            raise ValueError(f"line {i}: unparseable sample {line!r}")
        name = m.group(1)
        base = name
        for suffix in ("_count", "_sum", "_bucket"):
            if name.endswith(suffix) and name[: -len(suffix)] in declared:
                base = name[: -len(suffix)]
                break
        if base not in declared:
            raise ValueError(f"line {i}: sample {name!r} missing TYPE declaration")
        n_samples += 1
    return n_samples


class Response:
    """A route's reply: status + content type + encoded body.

    ``json_reply`` / ``text_reply`` are the idiomatic constructors; the
    gateway's ``/v1`` routes add headers (``Retry-After`` on 429)
    through ``headers``.
    """

    __slots__ = ("status", "ctype", "body", "headers")

    def __init__(
        self,
        status: int,
        ctype: str,
        body: bytes,
        headers: "dict[str, str] | None" = None,
    ) -> None:
        self.status = status
        self.ctype = ctype
        self.body = body
        self.headers = headers or {}


def json_reply(
    status: int, payload: dict, headers: "dict[str, str] | None" = None
) -> Response:
    return Response(
        status, "application/json",
        (json.dumps(payload) + "\n").encode(), headers,
    )


def text_reply(status: int, text: str) -> Response:
    return Response(status, "text/plain; charset=utf-8", text.encode())


class _Handler(BaseHTTPRequestHandler):
    """Thin dispatcher into the owning server's route table.

    Subclass-friendly by construction: routes live on the *server*
    (:meth:`_Server.build_routes`), so mounting new endpoints (the
    gateway's ``/v1/*``) means subclassing :class:`_Server`, not
    re-implementing ``do_GET``.
    """

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def _dispatch(self, method: str) -> None:
        path = self.path.split("?", 1)[0]
        query = self.path.split("?", 1)[1] if "?" in self.path else ""
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        try:
            resp = self.server.route(method, path, body, query)
        except Exception as exc:  # route bug: answer 500, keep serving
            resp = json_reply(500, {"error": f"{type(exc).__name__}: {exc}"})
        self._reply(resp)

    def _reply(self, resp: Response) -> None:
        self.send_response(resp.status)
        self.send_header("Content-Type", resp.ctype)
        self.send_header("Content-Length", str(len(resp.body)))
        for key, value in resp.headers.items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(resp.body)

    def log_message(self, *args) -> None:  # silence per-request stderr spam
        pass


class _Server(ThreadingHTTPServer):
    """The route-table HTTP server behind :class:`MetricsServer`.

    ``allow_reuse_address`` sets ``SO_REUSEADDR`` before bind, so rapid
    start/stop cycles (every test, the CI smoke jobs) never trip over a
    socket lingering in ``TIME_WAIT``.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, addr, telemetry, prefix: str):
        super().__init__(addr, _Handler)
        self._telemetry = telemetry
        self._prefix = prefix
        self.started_at = time.monotonic()
        self.routes = self.build_routes()

    def build_routes(self) -> "list[tuple[str, re.Pattern, object]]":
        """``(method, compiled path pattern, fn(match, body, query))``.

        Subclasses extend the returned list to mount endpoints beside
        ``/metrics`` — first match wins, declaration order is precedence.
        """
        return [
            ("GET", re.compile(r"^/metrics$"), self._route_metrics),
            ("GET", re.compile(r"^/healthz$"), self._route_healthz),
        ]

    def route(self, method: str, path: str, body: bytes, query: str) -> Response:
        matched_path = False
        for want_method, pattern, fn in self.routes:
            match = pattern.match(path)
            if match is None:
                continue
            matched_path = True
            if want_method == method:
                return fn(match, body, query)
        if matched_path:
            return json_reply(405, {"error": f"method {method} not allowed"})
        return text_reply(404, "not found\n")

    # -- built-in routes ----------------------------------------------

    def _route_metrics(self, match, body, query) -> Response:
        return Response(200, PROM_CONTENT_TYPE, self.render().encode())

    def _route_healthz(self, match, body, query) -> Response:
        return json_reply(
            200,
            {
                "status": "ok",
                "uptime_s": round(time.monotonic() - self.started_at, 3),
            },
        )

    def render(self) -> str:
        from repro.telemetry.session import get_telemetry

        telemetry = self._telemetry or get_telemetry()
        return render_prometheus(telemetry.metrics, prefix=self._prefix)


class MetricsServer:
    """A ``/metrics`` + ``/healthz`` endpoint on a daemon thread.

    ``telemetry=None`` scrapes whatever session is installed at request
    time (the right default for the CLI); pass a session explicitly to
    pin the endpoint to one run.  ``port=0`` binds an ephemeral port
    (read it back from ``.port`` — what the tests do).  Use as a context
    manager or call :meth:`start` / :meth:`stop` — ``stop()`` is
    idempotent and safe before ``start()``.

    Subclasses override :attr:`server_class` (and :meth:`_make_server`)
    to serve extra routes on the same socket; the gateway
    (:class:`repro.service.http.GatewayServer`) mounts ``/v1/*`` beside
    the scrape endpoints this way.
    """

    server_class = _Server

    def __init__(
        self,
        telemetry=None,
        host: str = "127.0.0.1",
        port: int = 0,
        prefix: str = "repro",
    ) -> None:
        self.telemetry = telemetry
        self.host = host
        self.port = port
        self.prefix = prefix
        self._server: "_Server | None" = None
        self._thread: "threading.Thread | None" = None

    def _make_server(self) -> _Server:
        return self.server_class(
            (self.host, self.port), self.telemetry, self.prefix
        )

    def start(self) -> "MetricsServer":
        if self._server is not None:
            return self
        self._server = self._make_server()
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down; a no-op when not (or no longer) running."""
        server, self._server = self._server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
