"""Exporters: JSONL event logs, Chrome ``trace_event`` JSON, summary JSON.

Three consumers, three formats:

* :func:`write_jsonl` — one JSON object per line (every span, then one
  final metrics snapshot); greppable, streamable, diff-friendly.
* :func:`write_chrome_trace` — the Chrome ``trace_event`` "JSON object
  format" (complete ``"X"`` events plus process-name metadata), loadable
  in Perfetto / ``chrome://tracing``.  :func:`validate_chrome_trace`
  checks the schema; the CI smoke job runs it on a real trace.
* :func:`write_summary` — a flat machine-readable run summary (counters,
  gauges, histogram moments, per-span-name aggregates, caller extras).
  The benchmark harness writes its repo-root ``BENCH_*.json`` perf
  trajectory through this.

Every exporter writes through :func:`atomic_write_text` — parent
directories created, tmp + fsync + ``os.replace`` — the same atomicity
discipline as checkpoints, so a crash mid-export (exactly when a trace
is most wanted) never leaves a torn artifact.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.telemetry.session import Telemetry

__all__ = [
    "SUMMARY_SCHEMA",
    "atomic_write_text",
    "chrome_trace",
    "summarize",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_summary",
]

SUMMARY_SCHEMA = "repro.telemetry.summary/v1"


def atomic_write_text(path: "str | Path", text: str) -> Path:
    """Write ``text`` to ``path`` atomically (tmp + fsync + ``os.replace``).

    Same discipline as checkpoint writes (:func:`repro.core.checkpoint.
    save_state`): a crash mid-export can never leave a torn file behind —
    ``path`` holds either the previous complete artifact or the new one.
    Parent directories are created as needed, so exporters can target
    per-run output trees that do not exist yet.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


# -- JSONL ---------------------------------------------------------------


def write_jsonl(path: "str | Path", telemetry: Telemetry) -> Path:
    """Write every span (one per line) followed by a metrics snapshot."""
    lines = [
        json.dumps({"type": "span", **span})
        for span in telemetry.tracer.export()
    ]
    lines.append(json.dumps({"type": "metrics", **telemetry.metrics.to_dict()}))
    return atomic_write_text(path, "\n".join(lines) + "\n")


# -- Chrome trace_event --------------------------------------------------


def chrome_trace(telemetry: Telemetry) -> dict:
    """Build a Chrome ``trace_event`` JSON object from recorded spans.

    Complete (``"X"``) events with microsecond timestamps; one
    ``process_name`` metadata event per distinct pid so merged pool
    workers show up as named tracks in Perfetto.  Causal span links
    (see :mod:`repro.telemetry.causal`) become Perfetto **flow events**:
    a ``ph: "s"`` at the source span and a binding-point ``ph: "f"``
    (``bp: "e"``) at the destination, matched by ``id``/``cat`` — the
    arrows Perfetto draws across tracks.  A link whose source span was
    never recorded (dropped message, disabled worker) emits nothing, so
    exported flows are never dangling.
    """
    events: list[dict] = []
    pids: set[int] = set()
    root_pid = telemetry.tracer.pid
    spans = telemetry.tracer.export()
    by_key = {(s["pid"], s["id"]): s for s in spans}
    flow_id = 0
    for span in spans:
        pids.add(span["pid"])
        args = dict(span.get("attrs", {}))
        if "rank" in span:
            args["rank"] = span["rank"]
        events.append(
            {
                "name": span["name"],
                "cat": span["cat"],
                "ph": "X",
                "ts": span["start_ns"] / 1e3,
                "dur": max(0, span["end_ns"] - span["start_ns"]) / 1e3,
                "pid": span["pid"],
                "tid": span["tid"],
                "args": args,
            }
        )
        for link in span.get("links") or ():
            src = by_key.get((link["pid"], link["id"]))
            if src is None:
                continue
            flow_id += 1
            kind = link.get("kind", "causal")
            # Flow start at the source span's end; the binding end at
            # the destination's start (clamped so the pair stays
            # ordered even across clock-read jitter).
            ts_s = src["end_ns"] / 1e3
            ts_f = max(span["start_ns"] / 1e3, ts_s)
            events.append(
                {
                    "name": kind,
                    "cat": f"flow.{kind}",
                    "ph": "s",
                    "id": flow_id,
                    "ts": ts_s,
                    "pid": src["pid"],
                    "tid": src["tid"],
                }
            )
            events.append(
                {
                    "name": kind,
                    "cat": f"flow.{kind}",
                    "ph": "f",
                    "bp": "e",
                    "id": flow_id,
                    "ts": ts_f,
                    "pid": span["pid"],
                    "tid": span["tid"],
                }
            )
    meta = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {
                "name": "repro" if pid == root_pid else f"repro-worker-{pid}"
            },
        }
        for pid in sorted(pids)
    ]
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: "str | Path", telemetry: Telemetry) -> Path:
    return atomic_write_text(path, json.dumps(chrome_trace(telemetry)) + "\n")


def validate_chrome_trace(trace: dict) -> int:
    """Schema-check a Chrome trace object; returns the event count.

    Raises :class:`ValueError` on the first violation.  Used by the
    tests and the CI telemetry smoke job on real exported traces.

    Flow events (``ph: "s"``/``"f"``) are validated pairwise: both need
    ``id`` and ``ts``, a flow end must carry the binding point
    (``bp: "e"``), its ``id`` must have a matching flow start of the
    same ``cat``, and a start must not dangle without an end (nor an
    end without a start).
    """
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("trace must be an object with a traceEvents list")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    flow_starts: dict = {}
    flow_ends: dict = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {i} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ValueError(f"event {i} missing required key {key!r}")
        phase = event["ph"]
        if phase not in ("X", "M", "B", "E", "i", "C", "s", "f"):
            raise ValueError(f"event {i} has unknown phase {phase!r}")
        if phase == "X":
            if "ts" not in event or "dur" not in event:
                raise ValueError(f"complete event {i} missing ts/dur")
            if event["ts"] < 0 or event["dur"] < 0:
                raise ValueError(f"event {i} has negative ts/dur")
        if phase in ("s", "f"):
            if "id" not in event or "ts" not in event:
                raise ValueError(f"flow event {i} missing id/ts")
            if phase == "f" and event.get("bp") != "e":
                raise ValueError(
                    f"flow end {i} missing binding point bp='e'"
                )
            bucket = flow_starts if phase == "s" else flow_ends
            bucket[event["id"]] = (i, event.get("cat"))
    for flow_id, (i, cat) in flow_ends.items():
        if flow_id not in flow_starts:
            raise ValueError(f"flow end {i} (id {flow_id}) has no flow start")
        if flow_starts[flow_id][1] != cat:
            raise ValueError(
                f"flow id {flow_id} category mismatch: "
                f"{flow_starts[flow_id][1]!r} vs {cat!r}"
            )
    for flow_id, (i, _cat) in flow_starts.items():
        if flow_id not in flow_ends:
            raise ValueError(
                f"flow start {i} (id {flow_id}) has no flow end"
            )
    return len(events)


# -- summary JSON --------------------------------------------------------


def summarize(
    telemetry: Telemetry,
    name: str,
    extra: "dict | None" = None,
) -> dict:
    """Aggregate a session into a flat, machine-readable summary."""
    span_rollup: dict[str, dict] = {}
    for span in telemetry.tracer.export():
        row = span_rollup.setdefault(
            span["name"], {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        duration = max(0, span["end_ns"] - span["start_ns"]) / 1e9
        row["count"] += 1
        row["total_s"] += duration
        row["max_s"] = max(row["max_s"], duration)
    metrics = telemetry.metrics.to_dict()
    summary = {
        "schema": SUMMARY_SCHEMA,
        "name": name,
        "counters": metrics["counters"],
        "gauges": metrics["gauges"],
        "histograms": metrics["histograms"],
        "spans": span_rollup,
        "extra": dict(extra or {}),
    }
    prune = _prune_rollup(metrics)
    if prune is not None:
        summary["prune"] = prune
    return summary


def _prune_rollup(metrics: dict) -> "dict | None":
    """Derived scored/pruned totals when the lazy-greedy engine ran.

    The solver routes each iteration's counter deltas into the
    ``prune.iteration_*`` histograms; their ``total`` moments must agree
    with the run counters (``kernel.combos_scored`` /
    ``prune.combos_pruned``) and with the sums of the per-iteration
    ``IterationRecord`` fields the ``BENCH_greedy`` trajectory reports —
    one number, three views (asserted by the tests).
    """
    counters = metrics["counters"]
    if "prune.blocks_scanned" not in counters and "prune.combos_pruned" not in counters:
        return None
    hist = metrics["histograms"]
    rollup = {
        "combos_scored": counters.get("kernel.combos_scored", 0),
        "combos_pruned": counters.get("prune.combos_pruned", 0),
        "blocks_scanned": counters.get("prune.blocks_scanned", 0),
        "blocks_skipped": counters.get("prune.blocks_skipped", 0),
    }
    for key, name in (
        ("iteration_combos_scored", "prune.iteration_combos_scored"),
        ("iteration_combos_pruned", "prune.iteration_combos_pruned"),
    ):
        if name in hist:
            rollup[f"{key}_total"] = hist[name]["total"]
            rollup["iterations"] = hist[name]["count"]
    return rollup


def write_summary(
    path: "str | Path",
    name: str,
    telemetry: "Telemetry | None" = None,
    extra: "dict | None" = None,
) -> Path:
    """Write a run summary; ``telemetry=None`` writes extras only."""
    if telemetry is None:
        telemetry = Telemetry(enabled=False)
    payload = summarize(telemetry, name, extra=extra)
    return atomic_write_text(
        path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
