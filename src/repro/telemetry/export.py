"""Exporters: JSONL event logs, Chrome ``trace_event`` JSON, summary JSON.

Three consumers, three formats:

* :func:`write_jsonl` — one JSON object per line (every span, then one
  final metrics snapshot); greppable, streamable, diff-friendly.
* :func:`write_chrome_trace` — the Chrome ``trace_event`` "JSON object
  format" (complete ``"X"`` events plus process-name metadata), loadable
  in Perfetto / ``chrome://tracing``.  :func:`validate_chrome_trace`
  checks the schema; the CI smoke job runs it on a real trace.
* :func:`write_summary` — a flat machine-readable run summary (counters,
  gauges, histogram moments, per-span-name aggregates, caller extras).
  The benchmark harness writes its repo-root ``BENCH_*.json`` perf
  trajectory through this.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.telemetry.session import Telemetry

__all__ = [
    "SUMMARY_SCHEMA",
    "chrome_trace",
    "summarize",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_summary",
]

SUMMARY_SCHEMA = "repro.telemetry.summary/v1"


# -- JSONL ---------------------------------------------------------------


def write_jsonl(path: "str | Path", telemetry: Telemetry) -> Path:
    """Write every span (one per line) followed by a metrics snapshot."""
    path = Path(path)
    with open(path, "w") as fh:
        for span in telemetry.tracer.export():
            fh.write(json.dumps({"type": "span", **span}) + "\n")
        fh.write(
            json.dumps({"type": "metrics", **telemetry.metrics.to_dict()}) + "\n"
        )
    return path


# -- Chrome trace_event --------------------------------------------------


def chrome_trace(telemetry: Telemetry) -> dict:
    """Build a Chrome ``trace_event`` JSON object from recorded spans.

    Complete (``"X"``) events with microsecond timestamps; one
    ``process_name`` metadata event per distinct pid so merged pool
    workers show up as named tracks in Perfetto.
    """
    events: list[dict] = []
    pids: set[int] = set()
    root_pid = telemetry.tracer.pid
    for span in telemetry.tracer.export():
        pids.add(span["pid"])
        args = dict(span.get("attrs", {}))
        if "rank" in span:
            args["rank"] = span["rank"]
        events.append(
            {
                "name": span["name"],
                "cat": span["cat"],
                "ph": "X",
                "ts": span["start_ns"] / 1e3,
                "dur": max(0, span["end_ns"] - span["start_ns"]) / 1e3,
                "pid": span["pid"],
                "tid": span["tid"],
                "args": args,
            }
        )
    meta = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {
                "name": "repro" if pid == root_pid else f"repro-worker-{pid}"
            },
        }
        for pid in sorted(pids)
    ]
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: "str | Path", telemetry: Telemetry) -> Path:
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(telemetry)) + "\n")
    return path


def validate_chrome_trace(trace: dict) -> int:
    """Schema-check a Chrome trace object; returns the event count.

    Raises :class:`ValueError` on the first violation.  Used by the
    tests and the CI telemetry smoke job on real exported traces.
    """
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("trace must be an object with a traceEvents list")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {i} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ValueError(f"event {i} missing required key {key!r}")
        phase = event["ph"]
        if phase not in ("X", "M", "B", "E", "i", "C"):
            raise ValueError(f"event {i} has unknown phase {phase!r}")
        if phase == "X":
            if "ts" not in event or "dur" not in event:
                raise ValueError(f"complete event {i} missing ts/dur")
            if event["ts"] < 0 or event["dur"] < 0:
                raise ValueError(f"event {i} has negative ts/dur")
    return len(events)


# -- summary JSON --------------------------------------------------------


def summarize(
    telemetry: Telemetry,
    name: str,
    extra: "dict | None" = None,
) -> dict:
    """Aggregate a session into a flat, machine-readable summary."""
    span_rollup: dict[str, dict] = {}
    for span in telemetry.tracer.export():
        row = span_rollup.setdefault(
            span["name"], {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        duration = max(0, span["end_ns"] - span["start_ns"]) / 1e9
        row["count"] += 1
        row["total_s"] += duration
        row["max_s"] = max(row["max_s"], duration)
    metrics = telemetry.metrics.to_dict()
    return {
        "schema": SUMMARY_SCHEMA,
        "name": name,
        "counters": metrics["counters"],
        "gauges": metrics["gauges"],
        "histograms": metrics["histograms"],
        "spans": span_rollup,
        "extra": dict(extra or {}),
    }


def write_summary(
    path: "str | Path",
    name: str,
    telemetry: "Telemetry | None" = None,
    extra: "dict | None" = None,
) -> Path:
    """Write a run summary; ``telemetry=None`` writes extras only."""
    if telemetry is None:
        telemetry = Telemetry(enabled=False)
    path = Path(path)
    payload = summarize(telemetry, name, extra=extra)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
