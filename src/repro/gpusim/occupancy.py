"""V100 occupancy calculator.

Justifies the timing model's thread thresholds from first principles:
how many thread blocks fit per SM given the kernel's register and
shared-memory appetite, how many threads that leaves resident, and
whether that is enough to hide pipeline and DRAM latencies.  The maxF
kernel's register pressure is dominated by the prefetched rows
(MemOpt1/2 hold two packed rows in registers), so prefetching trades
occupancy for fewer loads — the calculator quantifies when that trade
inverts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import V100, DeviceSpec

__all__ = ["KernelResources", "Occupancy", "occupancy"]

# V100 per-SM resource pools (CUDA occupancy tables).
REGISTERS_PER_SM = 65_536
SHARED_BYTES_PER_SM = 96 * 1024
MAX_BLOCKS_PER_SM = 32
WARPS_PER_SM = 64


@dataclass(frozen=True)
class KernelResources:
    """What one thread / block of the scoring kernel consumes.

    ``base_registers`` covers the decode arithmetic and loop state.
    Prefetched rows live in *local memory* (the paper's "thread's faster
    local memory") — a BRCA-width pair of rows (2 x 31 x 8 bytes) would
    blow the register file at block size 512, so the CUDA code spills
    them to the L1-resident stack; that costs latency on a miss, not
    occupancy.  ``shared_bytes_per_block`` holds the block-reduction
    scratch (one 20-byte record per warp).
    """

    block_size: int = 512
    base_registers: int = 40
    prefetched_rows: int = 2
    words: int = 31
    shared_bytes_per_block: int = 512

    @property
    def registers_per_thread(self) -> int:
        return self.base_registers

    @property
    def local_bytes_per_thread(self) -> int:
        """Stack bytes holding the prefetched rows."""
        return 8 * self.prefetched_rows * self.words

    def __post_init__(self) -> None:
        if self.block_size < 32 or self.block_size % 32:
            raise ValueError("block_size must be a positive multiple of 32")


@dataclass(frozen=True)
class Occupancy:
    """Resolved occupancy for one kernel on one device."""

    blocks_per_sm: int
    threads_per_sm: int
    device_threads: int
    limiter: str

    @property
    def fraction(self) -> float:
        return self.threads_per_sm / 2048.0


def occupancy(resources: KernelResources, device: DeviceSpec = V100) -> Occupancy:
    """CUDA-style occupancy: min over register/shared/block/thread limits."""
    regs_per_block = resources.registers_per_thread * resources.block_size
    limits = {
        "registers": REGISTERS_PER_SM // max(regs_per_block, 1),
        "shared": SHARED_BYTES_PER_SM // max(resources.shared_bytes_per_block, 1),
        "blocks": MAX_BLOCKS_PER_SM,
        "threads": (device.max_threads_per_sm // resources.block_size),
    }
    limiter = min(limits, key=lambda k: limits[k])
    blocks = max(limits[limiter], 0)
    threads = blocks * resources.block_size
    return Occupancy(
        blocks_per_sm=blocks,
        threads_per_sm=min(threads, device.max_threads_per_sm),
        device_threads=min(threads, device.max_threads_per_sm) * device.n_sms,
        limiter=limiter,
    )
