"""Functional block-level execution of the paper's two CUDA kernels.

The vectorized engine (:mod:`repro.core.engine`) computes the same
*result* as the CUDA code but does not follow its block structure.  This
executor does: it walks the grid block by block exactly as a launch of
``maxF`` would —

* each block owns ``block_size`` consecutive linear thread ids;
* every thread decodes its tuple, loops its inner combinations against
  the packed matrices, and keeps a running best;
* the block reduces its threads' bests to **one 20-byte record**
  (stage 1 of Section III-E, the 512x list shrink);

then runs ``parallelReduceMax`` (stage 2): a tree reduction over the
per-block records on-device.  Alongside the records it accounts cycles
and global word reads per block using the same constants as the timing
model, giving a per-block busy profile the analytic model can be checked
against at small scale.

This is the slowest engine in the library (it mirrors hardware
structure, not NumPy efficiency) and is meant for validation and
teaching, not production solving.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.bitmatrix.matrix import BitMatrix
from repro.combinatorics.decode import combos_from_linear
from repro.core.combination import MultiHitCombination, better
from repro.core.fscore import FScoreParams
from repro.core.memopt import MemoryConfig
from repro.core.reduction import DEFAULT_BLOCK_SIZE, multi_stage_reduce
from repro.faults.plan import FaultInjected
from repro.gpusim.timing import TimingTuning
from repro.scheduling.schemes import Scheme
from repro.scheduling.workload import total_threads
from repro.telemetry.session import get_telemetry

__all__ = ["BlockResult", "KernelLaunchResult", "BlockKernelExecutor"]


@dataclass(frozen=True)
class BlockResult:
    """One CUDA block's outcome: its winner record plus its cost account."""

    block_id: int
    first_thread: int
    n_threads: int
    winner: "MultiHitCombination | None"
    cycles: float
    word_reads: int


@dataclass(frozen=True)
class KernelLaunchResult:
    """A full maxF + parallelReduceMax launch over a thread range."""

    blocks: list[BlockResult]
    winner: "MultiHitCombination | None"

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    @property
    def total_cycles(self) -> float:
        return sum(b.cycles for b in self.blocks)

    @property
    def total_word_reads(self) -> int:
        return sum(b.word_reads for b in self.blocks)

    @property
    def stage1_records(self) -> int:
        """Candidates surviving the in-kernel block reduction."""
        return sum(1 for b in self.blocks if b.winner is not None)

    def busy_profile(self) -> np.ndarray:
        """Per-block cycle counts (the intra-GPU balance picture)."""
        return np.array([b.cycles for b in self.blocks])


@dataclass
class BlockKernelExecutor:
    """Executes the scoring kernel block by block on the simulated device.

    ``fault_plan`` (site ``"gpu"``, target = block id, call = launch
    number) injects deterministic device faults: a ``straggler`` scales
    the block's cycle account by ``spec.slowdown`` (a slow GPU changes
    the busy profile, never the winner); a ``crash`` raises
    :class:`FaultInjected` mid-launch (a dead device — the caller's
    recovery layer reschedules the range)."""

    scheme: Scheme
    block_size: int = DEFAULT_BLOCK_SIZE
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    tuning: TimingTuning = field(default_factory=TimingTuning)
    fault_plan: "object | None" = None
    report: "object | None" = None  # repro.faults.FaultReport

    _launches: int = field(default=0, init=False, repr=False, compare=False)

    def launch(
        self,
        tumor: BitMatrix,
        normal: BitMatrix,
        params: FScoreParams,
        lam_start: int = 0,
        lam_end: "int | None" = None,
    ) -> KernelLaunchResult:
        """Run maxF over ``[lam_start, lam_end)`` and reduce to one winner."""
        g = tumor.n_genes
        if normal.n_genes != g:
            raise ValueError("tumor and normal matrices must share the gene axis")
        total = total_threads(self.scheme, g)
        lam_end = total if lam_end is None else min(lam_end, total)
        if lam_end <= lam_start:
            return KernelLaunchResult(blocks=[], winner=None)

        call = self._launches
        self._launches += 1
        telemetry = get_telemetry()
        blocks: list[BlockResult] = []
        block_id = 0
        with telemetry.span(
            "gpusim.launch", cat="gpusim",
            call=call, lam_start=lam_start, lam_end=lam_end,
        ):
            for first in range(lam_start, lam_end, self.block_size):
                last = min(first + self.block_size, lam_end)
                result = self._run_block(
                    block_id, first, last, tumor, normal, params, g
                )
                spec = (
                    self.fault_plan.take("gpu", block_id, call)
                    if self.fault_plan is not None
                    else None
                )
                if spec is not None:
                    if spec.kind == "crash":
                        exc = FaultInjected(
                            f"injected device crash in block {block_id}"
                        )
                        # Dead device: dump before unwinding, while the
                        # ring still holds this launch's block spans.
                        if telemetry.flight is not None:
                            telemetry.flight.record_fault(
                                "crash", "gpu", block_id, call, "raised",
                                detail=str(exc),
                            )
                            telemetry.flight.dump(
                                "gpu-crash", exc=exc, telemetry=telemetry,
                                fault_report=self.report,
                            )
                        raise exc
                    if spec.kind == "straggler":
                        result = replace(
                            result, cycles=result.cycles * spec.slowdown
                        )
                        if self.report is not None:
                            self.report.record(
                                "straggler", "gpu", block_id, call, "observed",
                                detail=f"x{spec.slowdown:g} cycles",
                            )
                blocks.append(result)
                block_id += 1

            # Stage 2: parallelReduceMax over the per-block records.
            with telemetry.span("reduce", cat="gpusim", candidates=len(blocks)):
                winner = multi_stage_reduce(
                    [b.winner for b in blocks], block_size=32
                )
        if telemetry.enabled:
            telemetry.count("gpusim.launches")
            telemetry.count("gpusim.blocks", len(blocks))
            telemetry.count(
                "gpusim.word_reads", sum(b.word_reads for b in blocks)
            )
            telemetry.observe(
                "gpusim.launch_cycles", sum(b.cycles for b in blocks)
            )
        return KernelLaunchResult(blocks=blocks, winner=winner)

    # -- one block ------------------------------------------------------

    def _run_block(
        self,
        block_id: int,
        first: int,
        last: int,
        tumor: BitMatrix,
        normal: BitMatrix,
        params: FScoreParams,
        g: int,
    ) -> BlockResult:
        f_ord, d = self.scheme.flattened, self.scheme.inner
        words = tumor.n_words + normal.n_words
        pre = min(self.memory.prefetched_rows, f_ord)
        rows_loaded = (f_ord - pre) + d
        ops_combo = self.tuning.ops_per_combo(words, rows_loaded)
        setup_ops = self.tuning.setup_ops_per_thread(words, pre)

        tuples = combos_from_linear(np.arange(first, last), f_ord)
        winner: "MultiHitCombination | None" = None
        cycles = 0.0
        word_reads = 0

        for row in tuples:
            top = int(row[-1])
            cycles += setup_ops
            word_reads += pre * words
            n_inner = g - 1 - top
            if d == 0:
                candidates = row[None, :]
            elif n_inner < d:
                continue
            else:
                inner = combos_from_linear(
                    np.arange(_n_combos(n_inner, d)), d
                ) + (top + 1)
                candidates = np.concatenate(
                    [np.broadcast_to(row, (inner.shape[0], f_ord)), inner], axis=1
                )
            # Thread-serial scoring of this thread's combinations.
            t_and = tumor.words[candidates[:, 0]].copy()
            n_and = normal.words[candidates[:, 0]].copy()
            for c in range(1, candidates.shape[1]):
                np.bitwise_and(t_and, tumor.words[candidates[:, c]], out=t_and)
                np.bitwise_and(n_and, normal.words[candidates[:, c]], out=n_and)
            tp = np.bitwise_count(t_and).sum(axis=1).astype(np.int64)
            tn = params.n_normal - np.bitwise_count(n_and).sum(axis=1).astype(np.int64)
            f = (params.alpha * tp + tn) / params.denominator
            cycles += candidates.shape[0] * ops_combo
            word_reads += candidates.shape[0] * rows_loaded * words

            fmax = float(f.max())
            tied = np.flatnonzero(f == fmax)
            idx = min(tied, key=lambda i: tuple(candidates[i]))
            winner = better(
                winner,
                MultiHitCombination(
                    genes=tuple(int(x) for x in candidates[idx]),
                    f=fmax,
                    tp=int(tp[idx]),
                    tn=int(tn[idx]),
                ),
            )
        return BlockResult(
            block_id=block_id,
            first_thread=first,
            n_threads=last - first,
            winner=winner,
            cycles=cycles,
            word_reads=word_reads,
        )


def _n_combos(n: int, k: int) -> int:
    import math

    return math.comb(n, k) if n >= k else 0
