"""Analytic kernel-timing model: instruction cost + DRAM roofline + tail.

A kernel's busy time is the maximum of three resource bounds:

* **compute** — per-combination instructions: one AND+popcount chain over
  the packed words, one *load* per non-prefetched row word (register-
  resident prefetched rows cost nothing in the loop), plus loop
  bookkeeping; per-thread setup (the closed-form index decode and the
  prefetch loads) is added once per thread.  This is where the MemOpt
  speedups come from: removing row loads from the inner loop removes
  instructions, not just DRAM traffic.
* **memory** — DRAM bytes over bandwidth.  Raw traffic is derated by a
  *cache-reuse* factor (warp-level broadcast of shared rows plus L2 line
  reuse), and bandwidth is derated by a latency-hiding factor: a GPU
  running fewer threads than needed to cover DRAM latency cannot reach
  peak bandwidth.  The low-index GPUs of the 2x2 scheme — few, heavy
  threads — are memory-bound stragglers for exactly this reason (Fig. 6).
* **tail** — the single heaviest thread executed serially at ~1 op per
  cycle; with few resident threads the longest thread bounds the kernel
  no matter how idle the rest of the device is.

Constants live in :class:`TimingTuning`, each documented.  The model was
sanity-anchored against the paper's absolute single-GPU numbers (3-hit
BRCA ~23 min on one V100) but the experiments only rely on shapes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import V100, DeviceSpec
from repro.gpusim.kernel import KernelStats

__all__ = ["TimingTuning", "KernelTiming", "kernel_time"]


@dataclass(frozen=True)
class TimingTuning:
    """Model constants for the scoring kernel.

    and_cycles_per_word:
        AND + popcount + accumulate per packed 64-bit word (~2 simple ops
        on the int pipe).
    load_cycles_per_word:
        Issue + L1-hit cost of one 64-bit load in the inner loop (~4
        cycles amortized).
    base_ops_per_combo:
        Loop bookkeeping per inner combination (index increment, running
        max compare-and-swap): ~8 ops.
    decode_cycles:
        Per-thread closed-form lambda -> (i, j, k) decode: sqrt/cbrt via
        log/exp plus integer repair, ~60 cycles.
    latency_hide_threads:
        Resident threads needed to fully hide DRAM latency; V100 needs
        roughly full occupancy (~160k threads) with dependent-load code.
    compute_hide_threads:
        Threads needed to keep the issue pipelines full (~4 warps per
        scheduler).  A GPU given only a few thousand heavy threads (the
        low-index equi-area partitions of the 2x2 scheme) cannot issue at
        peak no matter how much work each thread has — this is the
        low-occupancy straggler effect behind Fig. 6.
    issue_efficiency:
        Fraction of peak integer issue this mix achieves (popcount and
        AND share pipes; calibrated so 3-hit BRCA on one V100 lands near
        the paper's ~23 minutes).
    cache_reuse:
        Raw word reads divided by this reach DRAM; threads in a warp read
        the same inner row simultaneously (broadcast) and consecutive
        inner rows hit L2.
    kernel_launch_s:
        Fixed launch + driver overhead per kernel.
    """

    and_cycles_per_word: float = 2.0
    load_cycles_per_word: float = 4.0
    base_ops_per_combo: float = 8.0
    decode_cycles: float = 60.0
    latency_hide_threads: float = 160_000.0
    compute_hide_threads: float = 40_960.0
    issue_efficiency: float = 0.35
    cache_reuse: float = 64.0
    kernel_launch_s: float = 12e-6

    def ops_per_combo(self, words: int, rows_loaded: int) -> float:
        """Inner-loop instructions per scored combination."""
        return (
            self.base_ops_per_combo
            + words * self.and_cycles_per_word
            + rows_loaded * words * self.load_cycles_per_word
        )

    def setup_ops_per_thread(self, words: int, prefetched_rows: int) -> float:
        """One-time per-thread cost: decode + prefetch loads."""
        return self.decode_cycles + prefetched_rows * words * self.load_cycles_per_word


@dataclass(frozen=True)
class KernelTiming:
    """Resolved resource times for one kernel launch on one GPU."""

    t_compute_s: float
    t_setup_s: float
    t_memory_s: float
    t_tail_s: float
    launch_s: float
    hide_factor: float
    issue_hide: float = 1.0

    @property
    def busy_s(self) -> float:
        return max(self.t_compute_s + self.t_setup_s, self.t_memory_s, self.t_tail_s)

    @property
    def total_s(self) -> float:
        return self.busy_s + self.launch_s

    @property
    def bound(self) -> str:
        """Which resource bounds this launch: memory, compute, or tail.

        A launch throttled by exposed load latency (``issue_hide < 1`` —
        too few threads to keep the pipelines fed through dependent
        loads) is *memory*-bound in the NVPROF sense even though the
        derated compute term is the arithmetic maximum.
        """
        busy = self.busy_s
        if busy == self.t_memory_s or self.issue_hide < 1.0:
            return "memory"
        if busy == self.t_tail_s:
            return "tail"
        return "compute"


def kernel_time(
    stats: KernelStats,
    device: DeviceSpec = V100,
    tuning: TimingTuning = TimingTuning(),
) -> KernelTiming:
    """Evaluate the three-bound timing model for one launch."""
    if stats.n_threads == 0 or stats.n_combos == 0:
        return KernelTiming(0.0, 0.0, 0.0, 0.0, tuning.kernel_launch_s, 1.0)
    ops_combo = tuning.ops_per_combo(stats.words_per_combo, stats.rows_per_combo)
    ops = stats.n_combos * ops_combo
    setup = stats.n_threads * tuning.setup_ops_per_thread(
        stats.words_per_combo, stats.prefetched_rows
    )
    issue_hide = min(1.0, stats.n_threads / tuning.compute_hide_threads)
    int_throughput = device.peak_int_ops_per_s * tuning.issue_efficiency * issue_hide
    t_compute = ops / int_throughput
    t_setup = setup / int_throughput
    hide = min(1.0, stats.n_threads / tuning.latency_hide_threads)
    dram_bytes = stats.bytes_read / tuning.cache_reuse
    t_memory = dram_bytes / (device.dram_bandwidth_bps * hide)
    t_tail = (
        (stats.max_thread_combos * ops_combo
         + tuning.setup_ops_per_thread(stats.words_per_combo, stats.prefetched_rows))
        / device.clock_hz
    )
    return KernelTiming(
        t_compute_s=t_compute,
        t_setup_s=t_setup,
        t_memory_s=t_memory,
        t_tail_s=t_tail,
        launch_s=tuning.kernel_launch_s,
        hide_factor=hide,
        issue_hide=issue_hide,
    )
