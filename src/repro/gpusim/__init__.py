"""Simulated NVIDIA V100 substrate.

Functional execution of the scoring kernels happens in vectorized NumPy
(:mod:`repro.core.engine`); this package supplies the *performance* side:
a V100 device description, an analytic kernel-timing model (roofline +
occupancy/latency-hiding + serial-tail), NVPROF-style counters (DRAM
throughput, warp-stall breakdown, issue efficiency), and a profiler that
aggregates them per GPU.

The model is deliberately simple and fully documented; every constant is
in :class:`TimingTuning` so experiments can state exactly what generated
their curves.
"""

from repro.gpusim.device import V100, DeviceSpec
from repro.gpusim.kernel import KernelStats
from repro.gpusim.timing import KernelTiming, TimingTuning, kernel_time
from repro.gpusim.counters import GpuMetrics, metrics_from_timing
from repro.gpusim.profiler import GpuProfile, Profiler
from repro.gpusim.executor import BlockKernelExecutor, BlockResult, KernelLaunchResult
from repro.gpusim.occupancy import KernelResources, Occupancy, occupancy

__all__ = [
    "KernelResources",
    "Occupancy",
    "occupancy",
    "BlockKernelExecutor",
    "BlockResult",
    "KernelLaunchResult",
    "DeviceSpec",
    "V100",
    "KernelStats",
    "TimingTuning",
    "KernelTiming",
    "kernel_time",
    "GpuMetrics",
    "metrics_from_timing",
    "Profiler",
    "GpuProfile",
]
