"""Profiler: per-GPU metric collection across a whole launch set.

Plays the role NVPROF played in the paper's Section IV-C/IV-D analysis:
feed it one :class:`KernelStats` per GPU, get back aligned per-GPU metric
arrays (utilization normalized against the slowest GPU, DRAM throughput,
stall fractions) ready for the Fig. 6 / Fig. 7 experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpusim.counters import GpuMetrics, metrics_from_timing
from repro.gpusim.device import V100, DeviceSpec
from repro.gpusim.kernel import KernelStats
from repro.gpusim.timing import TimingTuning, kernel_time
from repro.telemetry.session import get_telemetry

__all__ = ["GpuProfile", "Profiler"]


@dataclass
class GpuProfile:
    """Aligned per-GPU metric arrays for one kernel across all GPUs."""

    metrics: list[GpuMetrics]

    def _arr(self, attr: str) -> np.ndarray:
        return np.array([getattr(m, attr) for m in self.metrics])

    @property
    def n_gpus(self) -> int:
        return len(self.metrics)

    @property
    def busy_s(self) -> np.ndarray:
        return self._arr("busy_s")

    @property
    def utilization(self) -> np.ndarray:
        return self._arr("utilization")

    @property
    def dram_read_bps(self) -> np.ndarray:
        return self._arr("dram_read_bps")

    @property
    def stall_memory_dependency(self) -> np.ndarray:
        return self._arr("stall_memory_dependency")

    @property
    def stall_memory_throttle(self) -> np.ndarray:
        return self._arr("stall_memory_throttle")

    @property
    def stall_execution_dependency(self) -> np.ndarray:
        return self._arr("stall_execution_dependency")

    @property
    def bounds(self) -> list[str]:
        return [m.bound for m in self.metrics]

    def memory_to_compute_transition(self) -> "int | None":
        """First GPU index from which no later GPU is memory-bound.

        The paper observes this transition around GPU #500 of 600 in the
        2x2/ACC configuration.
        """
        bounds = self.bounds
        last_memory = None
        for idx, b in enumerate(bounds):
            if b == "memory":
                last_memory = idx
        if last_memory is None:
            return 0
        return last_memory + 1 if last_memory + 1 < len(bounds) else None


@dataclass
class Profiler:
    """Evaluates the timing model + counters for a set of per-GPU launches."""

    device: DeviceSpec = V100
    tuning: TimingTuning = field(default_factory=TimingTuning)

    def profile(self, launches: list[KernelStats]) -> GpuProfile:
        telemetry = get_telemetry()
        with telemetry.span("gpusim.profile", cat="gpusim", gpus=len(launches)):
            timings = [kernel_time(s, self.device, self.tuning) for s in launches]
            slowest = max((t.busy_s for t in timings), default=0.0)
            metrics = []
            for s, t in zip(launches, timings):
                util = t.busy_s / slowest if slowest > 0 else 0.0
                dram_bytes = s.bytes_read / self.tuning.cache_reuse
                metrics.append(
                    metrics_from_timing(s, t, dram_bytes=dram_bytes, utilization=util)
                )
        profile = GpuProfile(metrics)
        # Occupancy/stall counters land in the unified registry under
        # the gpusim.* namespace (the NVPROF-island merge).
        if telemetry.enabled:
            telemetry.metrics.absorb_gpu_profile(profile)
        return profile
