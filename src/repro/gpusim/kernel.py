"""Kernel launch statistics — the timing model's input.

One :class:`KernelStats` summarizes what a single GPU's share of the
``maxF`` kernel will do: how many threads run, how many combinations they
score in total, the packed word width per combination, how many matrix
rows each inner combination loads (the memory-optimization knob), the
exact global-memory word traffic (from :mod:`repro.core.memopt`), and the
heaviest single thread (which bounds the serial tail).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KernelStats"]


@dataclass(frozen=True)
class KernelStats:
    """Work summary for one GPU's kernel launch.

    Attributes
    ----------
    n_threads / n_combos:
        Threads in this GPU's linear-id range and total inner
        combinations they score.
    words_per_combo:
        Packed uint64 width ANDed per combination (tumor + normal).
    rows_per_combo:
        Matrix rows *loaded from memory* per inner combination — ``hits``
        minus the rows prefetched into thread-local storage (MemOpt1/2
        remove one each).
    prefetched_rows:
        Rows loaded once per thread instead of once per combination.
    bytes_read:
        Exact global-memory bytes touched (8 x the word-read count).
    max_thread_combos:
        Inner combinations of the heaviest thread (serial-tail bound).
    """

    n_threads: int
    n_combos: int
    words_per_combo: int
    rows_per_combo: int
    prefetched_rows: int
    bytes_read: int
    max_thread_combos: int
    block_size: int = 512

    def __post_init__(self) -> None:
        if self.n_threads < 0 or self.n_combos < 0 or self.bytes_read < 0:
            raise ValueError("kernel statistics cannot be negative")
        if self.n_threads and self.max_thread_combos * self.n_threads < self.n_combos:
            raise ValueError(
                "max_thread_combos inconsistent: "
                f"{self.n_threads} threads x {self.max_thread_combos} max "
                f"< {self.n_combos} total combos"
            )

    @property
    def n_blocks(self) -> int:
        return (self.n_threads + self.block_size - 1) // self.block_size

    @property
    def mean_thread_combos(self) -> float:
        return self.n_combos / self.n_threads if self.n_threads else 0.0
