"""NVPROF-style counters derived from the timing model.

The paper's Section IV-C analysis uses three NVPROF metric families:
DRAM read/write throughput, compute utilization, and the warp-stall
breakdown (memory dependency / memory throttle / execution dependency).
This module derives all three from a :class:`KernelTiming`:

* *memory dependency* stalls — cycles waiting on outstanding loads that
  too few resident threads could not hide (scales with ``1 - hide``);
* *memory throttle* stalls — cycles where the LSU queue is full because
  demanded bandwidth exceeds what DRAM sustains (the amount by which the
  memory bound exceeds the compute bound);
* *execution dependency* stalls — serial dependence inside a thread's
  inner loop (the running-max chain) plus per-thread setup, which
  dominates when threads are tiny or one long thread tails the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.kernel import KernelStats
from repro.gpusim.timing import KernelTiming

__all__ = ["GpuMetrics", "metrics_from_timing"]


@dataclass(frozen=True)
class GpuMetrics:
    """Per-GPU profile record (one row of Fig. 6/7)."""

    busy_s: float
    dram_read_bps: float
    dram_write_bps: float
    utilization: float  # busy / slowest-GPU busy; filled by the profiler
    stall_memory_dependency: float
    stall_memory_throttle: float
    stall_execution_dependency: float
    stall_other: float
    issue_efficiency: float
    bound: str


def metrics_from_timing(
    stats: KernelStats,
    timing: KernelTiming,
    dram_bytes: float,
    utilization: float = 1.0,
) -> GpuMetrics:
    """Derive counter values for one GPU; stall fractions sum to 1.

    ``dram_bytes`` is the post-cache traffic (raw bytes / cache reuse),
    which is what the hardware DRAM counters see.
    """
    busy = timing.busy_s
    if busy <= 0:
        return GpuMetrics(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, "idle")
    dram_read = dram_bytes / busy
    # Writes are the per-block winner records: negligible but nonzero.
    dram_write = stats.n_blocks * 20 / busy

    exposed_latency = (1.0 - timing.issue_hide) * (
        timing.t_compute_s + timing.t_setup_s
    )
    raw_md = (1.0 - timing.hide_factor) * timing.t_memory_s + 0.7 * exposed_latency
    raw_mt = max(0.0, timing.t_memory_s - timing.t_compute_s - timing.t_setup_s)
    raw_ed = 0.5 * timing.t_tail_s + timing.t_setup_s + 0.3 * exposed_latency
    raw_other = 0.08 * busy
    total = raw_md + raw_mt + raw_ed + raw_other
    issue_eff = min(1.0, (timing.t_compute_s + timing.t_setup_s) / busy)
    return GpuMetrics(
        busy_s=busy,
        dram_read_bps=dram_read,
        dram_write_bps=dram_write,
        utilization=utilization,
        stall_memory_dependency=raw_md / total,
        stall_memory_throttle=raw_mt / total,
        stall_execution_dependency=raw_ed / total,
        stall_other=raw_other / total,
        issue_efficiency=issue_eff,
        bound=timing.bound,
    )
