"""GPU device descriptions."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "V100"]


@dataclass(frozen=True)
class DeviceSpec:
    """The device parameters the timing model consumes."""

    name: str
    n_sms: int
    cores_per_sm: int
    clock_hz: float
    dram_bandwidth_bps: float
    dram_bytes: int
    max_threads_per_sm: int
    warp_size: int = 32

    @property
    def n_cores(self) -> int:
        return self.n_sms * self.cores_per_sm

    @property
    def max_resident_threads(self) -> int:
        return self.n_sms * self.max_threads_per_sm

    @property
    def peak_int_ops_per_s(self) -> float:
        """Peak simple-integer (bitwise AND / popcount) throughput."""
        return self.n_cores * self.clock_hz


# V100 SXM2 16 GB — the Summit GPU.
V100 = DeviceSpec(
    name="V100-SXM2-16GB",
    n_sms=80,
    cores_per_sm=64,
    clock_hz=1.53e9,
    dram_bandwidth_bps=900e9,
    dram_bytes=16 * 1024**3,
    max_threads_per_sm=2048,
)
